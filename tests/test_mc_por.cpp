//===--- test_mc_por.cpp - Partial-order reduction differential tests ----------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// `--por` must never change a verdict, only the amount of work done to
// reach it. Every test here runs the same harness twice — full expansion
// and ample-set reduction — and checks verdict equality, counterexample
// replayability, and (for completed searches) that the reduced run
// stored no more states than the full one. Truncated searches explore
// different prefixes of the space and are deliberately not compared on
// counts.
//
//===----------------------------------------------------------------------===//

#include "mc/SafetyHarness.h"
#include "vmmc/EspFirmwareSource.h"
#include "TestHelpers.h"

#include <fstream>
#include <set>
#include <sstream>

using namespace esp;
using namespace esp::test;

namespace {

std::string readExample(const std::string &Name) {
  std::string Path = std::string(ESP_SOURCE_DIR) + "/examples/esp/" + Name;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In) << "cannot read " << Path;
  std::ostringstream Text;
  Text << In.rdbuf();
  return Text.str();
}

/// The per-process / cluster harness, opened up so tests can hold on to
/// the module and environment and call replayTrace on the results.
/// Mirrors verifyProcessMemorySafety (single name: the environment
/// drives every channel the process receives from) and
/// verifyProcessClusterMemorySafety (several names: driven = read by a
/// kept process and written by none).
struct Harness {
  ModuleIR Module;
  std::unique_ptr<BoundedEnvModel> Env;

  McResult check(McOptions Mc) const {
    Mc.Env = Env.get();
    return checkModel(Module, Mc);
  }
  bool replay(McOptions Mc, const McResult &R) const {
    Mc.Env = Env.get();
    return replayTrace(Module, Mc, R);
  }
};

Harness makeHarness(const Program &Prog,
                    const std::vector<std::string> &Names) {
  Harness H;
  ModuleIR Full = lowerProgram(Prog);
  H.Module.Prog = Full.Prog;
  for (ProcIR &P : Full.Procs)
    for (const std::string &Name : Names)
      if (P.Proc->Name == Name) {
        H.Module.Procs.push_back(std::move(P));
        break;
      }
  EXPECT_FALSE(H.Module.Procs.empty());

  std::set<std::string> Read, Written;
  for (const ProcIR &P : H.Module.Procs)
    for (const Inst &I : P.Insts) {
      if (I.Kind != InstKind::Block)
        continue;
      for (const IRCase &Case : I.Cases)
        (Case.IsIn ? Read : Written).insert(Case.Channel->Name);
    }
  std::set<std::string> Driven;
  for (const std::string &Name : Read)
    if (Names.size() == 1 || !Written.count(Name))
      Driven.insert(Name);
  H.Env = std::make_unique<BoundedEnvModel>(Driven);
  return H;
}

/// Runs \p H full and reduced and checks the differential contract.
void expectPorAgrees(const Harness &H, McOptions Mc, const char *Label) {
  McOptions FullMc = Mc;
  FullMc.Por = false;
  McResult Full = H.check(FullMc);
  McOptions PorMc = Mc;
  PorMc.Por = true;
  McResult Por = H.check(PorMc);
  EXPECT_EQ(Por.Verdict, Full.Verdict) << Label;
  // Stored-count comparisons only make sense when both searches ran to
  // completion; a truncated pair explores two different prefixes.
  if (Full.Verdict == McVerdict::OK && Por.Verdict == McVerdict::OK) {
    EXPECT_LE(Por.StatesStored, Full.StatesStored) << Label;
  }
  if (Por.Verdict == McVerdict::Violation) {
    EXPECT_TRUE(H.replay(PorMc, Por)) << Label << "\n" << Por.report();
  }
}

// With a single kept process every enabled move shares that process, so
// no proper ample subset exists and the reduced search must be
// bit-identical to the full goldens (see test_determinism.cpp).
TEST(McPor, SingleProcessHarnessBitIdentical) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R =
      compileBuffer(SM, Diags, "vmmc.esp", vmmc::getVmmcEspSource());
  ASSERT_TRUE(R.Success) << Diags.renderAll();
  struct Golden {
    const char *Process;
    uint64_t Explored, Stored, Transitions;
  };
  static const Golden Goldens[] = {
      {"pageTable", 221, 45, 220},
      {"userReq", 745, 105, 744},
      {"deliver", 285, 29, 284},
  };
  for (const Golden &G : Goldens) {
    SafetyOptions Options;
    Options.Mc.Por = true;
    McResult Result = verifyProcessMemorySafety(*R.Prog, G.Process, Options);
    EXPECT_EQ(Result.Verdict, McVerdict::OK) << G.Process;
    EXPECT_EQ(Result.StatesExplored, G.Explored) << G.Process;
    EXPECT_EQ(Result.StatesStored, G.Stored) << G.Process;
    EXPECT_EQ(Result.Transitions, G.Transitions) << G.Process;
    EXPECT_EQ(Result.PorReducedStates, 0u) << G.Process;
  }
}

TEST(McPor, ExamplesPerProcessDifferential) {
  static const struct {
    const char *File;
    const char *Process;
  } Cases[] = {
      {"pagetable.esp", "translator"},     {"pagetable.esp", "pageTable"},
      {"quickstart.esp", "producer"},      {"quickstart.esp", "add5"},
      {"quickstart.esp", "consumer"},      {"sliding_window.esp", "sender"},
      {"sliding_window.esp", "wire"},      {"sliding_window.esp", "receiver"},
      {"sliding_window.esp", "sink"},
  };
  for (const auto &C : Cases) {
    SourceManager SM;
    DiagnosticEngine Diags(SM);
    CompileResult R = compileBuffer(SM, Diags, C.File, readExample(C.File));
    ASSERT_TRUE(R.Success) << Diags.renderAll();
    Harness H = makeHarness(*R.Prog, {C.Process});
    expectPorAgrees(H, McOptions(),
                    (std::string(C.File) + " --process " + C.Process).c_str());
  }
}

TEST(McPor, ExamplesWholeSystemDifferential) {
  // All three shipped examples end in an expected terminal violation;
  // the reduced search must find one too, and its trace must replay.
  for (const char *File :
       {"pagetable.esp", "quickstart.esp", "sliding_window.esp"}) {
    auto C = compile(readExample(File));
    ASSERT_TRUE(C);
    McResult Full = checkModel(C->Module, McOptions());
    McOptions PorMc;
    PorMc.Por = true;
    McResult Por = checkModel(C->Module, PorMc);
    EXPECT_EQ(Por.Verdict, Full.Verdict) << File;
    EXPECT_EQ(Por.Verdict, McVerdict::Violation) << File;
    EXPECT_TRUE(replayTrace(C->Module, PorMc, Por)) << File;
  }
}

// The headline case: two channel-disjoint VMMC processes under a finite
// environment workload. The interleavings of pageTable's translations
// with deliver's RDMA transfers are independent, and the budgeted space
// is acyclic enough that the cycle proviso never bites, so the reduced
// search collapses the product. The bench row in BENCH_mc_modes.json
// records the same ratio at budget 4.
TEST(McPor, BudgetedClusterReductionAtLeastFiveX) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R =
      compileBuffer(SM, Diags, "vmmc.esp", vmmc::getVmmcEspSource());
  ASSERT_TRUE(R.Success) << Diags.renderAll();
  SafetyOptions Options;
  Options.Mc.EnvSendBudget = 3;
  McResult Full = verifyProcessClusterMemorySafety(
      *R.Prog, {"pageTable", "deliver"}, Options);
  ASSERT_EQ(Full.Verdict, McVerdict::OK) << Full.report();
  Options.Mc.Por = true;
  McResult Por = verifyProcessClusterMemorySafety(
      *R.Prog, {"pageTable", "deliver"}, Options);
  ASSERT_EQ(Por.Verdict, McVerdict::OK) << Por.report();
  EXPECT_GT(Por.PorReducedStates, 0u);
  EXPECT_GE(Full.StatesStored, 5 * Por.StatesStored)
      << "full " << Full.StatesStored << " vs reduced " << Por.StatesStored;
}

// Exhausting the environment budget leaves every process blocked on
// input. That is the workload completing, not a deadlock: the verdict
// must stay OK.
TEST(McPor, BudgetQuiescenceIsNotDeadlock) {
  auto C = compile(R"(
channel req: int
process srv { while (true) { in(req, $x); } }
)");
  ASSERT_TRUE(C);
  Harness H = makeHarness(*C->Prog, {"srv"});
  for (bool Por : {false, true}) {
    McOptions Mc;
    Mc.EnvSendBudget = 2;
    Mc.Por = Por;
    McResult R = H.check(Mc);
    EXPECT_EQ(R.Verdict, McVerdict::OK)
        << (Por ? "por: " : "full: ") << R.report();
  }
}

// Regression for the ample-set C1 condition under a budget: `steady`
// and `buggy` share no channels, so a reduction may defer `buggy`'s
// moves — but must not starve them. With a *global* send budget the two
// env inputs would be dependent through the shared counter and the
// ample seed could consume every unit before `buggy` ever ran, hiding
// the assertion failure; the per-channel budget keeps them independent
// and the reduced search must still reach the bug.
TEST(McPor, PartnerBugSurvivesReduction) {
  auto C = compile(R"(
channel reqA: int
channel reqB: int
process steady { while (true) { in(reqA, $x); } }
process buggy {
  $n = 0;
  while (true) { in(reqB, $x); n = n + x; assert(n < 2); }
}
)");
  ASSERT_TRUE(C);
  Harness H = makeHarness(*C->Prog, {"steady", "buggy"});
  McOptions Mc;
  Mc.EnvSendBudget = 2;
  expectPorAgrees(H, Mc, "partner bug, sequential");
  McOptions PorMc = Mc;
  PorMc.Por = true;
  McResult R = H.check(PorMc);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::AssertFailed);
}

// The parallel engine shares the ample selector but uses the
// conservative insert-failure proviso, so its reduced counts differ
// from the sequential engine's; verdicts may not.
TEST(ParallelMcPor, VerdictsMatchSequential) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R =
      compileBuffer(SM, Diags, "vmmc.esp", vmmc::getVmmcEspSource());
  ASSERT_TRUE(R.Success) << Diags.renderAll();

  // Single-process: no ample subsets exist, counts stay the goldens.
  {
    SafetyOptions Options;
    Options.Mc.Por = true;
    Options.Mc.Jobs = 4;
    McResult Result = verifyProcessMemorySafety(*R.Prog, "pageTable", Options);
    EXPECT_EQ(Result.Verdict, McVerdict::OK) << Result.report();
    EXPECT_EQ(Result.StatesExplored, 221u);
    EXPECT_EQ(Result.StatesStored, 45u);
  }

  // Budgeted cluster: clean under full search, must stay clean reduced.
  {
    SafetyOptions Options;
    Options.Mc.EnvSendBudget = 3;
    Options.Mc.Por = true;
    Options.Mc.Jobs = 4;
    McResult Result = verifyProcessClusterMemorySafety(
        *R.Prog, {"pageTable", "deliver"}, Options);
    EXPECT_EQ(Result.Verdict, McVerdict::OK) << Result.report();
  }
}

TEST(ParallelMcPor, PartnerBugFoundWithJobs) {
  auto C = compile(R"(
channel reqA: int
channel reqB: int
process steady { while (true) { in(reqA, $x); } }
process buggy {
  $n = 0;
  while (true) { in(reqB, $x); n = n + x; assert(n < 2); }
}
)");
  ASSERT_TRUE(C);
  Harness H = makeHarness(*C->Prog, {"steady", "buggy"});
  McOptions Mc;
  Mc.EnvSendBudget = 2;
  Mc.Por = true;
  Mc.Jobs = 4;
  McResult R = H.check(Mc);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::AssertFailed);
  EXPECT_TRUE(H.replay(Mc, R)) << R.report();
}

} // namespace

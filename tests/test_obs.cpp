//===--- test_obs.cpp - Observability layer tests ---------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Pins the structural guarantees the obs subsystem documents: traces are
// valid Chrome trace_event JSON with monotone timestamps and matched B/E
// pairs per track, sharded metrics are exact after writers join, the IR
// profiler's step counts agree with the machine's own instruction
// counter, and --progress telemetry reproduces the determinism goldens
// without perturbing them.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "mc/SafetyHarness.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Obs.h"
#include "obs/Profile.h"
#include "obs/Trace.h"
#include "obs/TracingObserver.h"
#include "support/ToolArgs.h"
#include "vmmc/EspFirmwareSource.h"

#include <map>
#include <thread>
#include <vector>

using namespace esp;
using namespace esp::test;

namespace {

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(ObsJson, RoundTrip) {
  using obs::JsonValue;
  JsonValue Root = JsonValue::object();
  Root.set("int", JsonValue::integer(-42));
  Root.set("dbl", JsonValue::number(1.5));
  Root.set("str", JsonValue::str("a \"quoted\"\nline\tand \\ slash"));
  Root.set("null", JsonValue::null());
  Root.set("flag", JsonValue::boolean(true));
  JsonValue Arr = JsonValue::array();
  Arr.push(JsonValue::integer(1));
  Arr.push(JsonValue::str("two"));
  Root.set("arr", std::move(Arr));

  for (unsigned Indent : {0u, 2u}) {
    JsonValue Back;
    std::string Error;
    ASSERT_TRUE(obs::parseJson(Root.dump(Indent), Back, Error)) << Error;
    EXPECT_EQ(Back.get("int").asInt(), -42);
    EXPECT_DOUBLE_EQ(Back.get("dbl").asDouble(), 1.5);
    EXPECT_EQ(Back.get("str").asString(),
              "a \"quoted\"\nline\tand \\ slash");
    EXPECT_TRUE(Back.get("null").isNull());
    EXPECT_TRUE(Back.get("flag").asBool());
    ASSERT_EQ(Back.get("arr").size(), 2u);
    EXPECT_EQ(Back.get("arr").at(1).asString(), "two");
  }
}

TEST(ObsJson, RejectsMalformedInput) {
  obs::JsonValue V;
  std::string Error;
  EXPECT_FALSE(obs::parseJson("{\"a\": 1,}", V, Error));
  EXPECT_FALSE(obs::parseJson("[1, 2] trailing", V, Error));
  EXPECT_FALSE(obs::parseJson("\"unterminated", V, Error));
  EXPECT_FALSE(obs::parseJson("", V, Error));
}

TEST(ObsJson, UnicodeEscapes) {
  obs::JsonValue V;
  std::string Error;
  ASSERT_TRUE(obs::parseJson("\"\\u0041\\u00e9\"", V, Error)) << Error;
  EXPECT_EQ(V.asString(), "A\xc3\xa9"); // 'A', e-acute in UTF-8.
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(ObsMetrics, CountersExactAcrossThreads) {
  obs::MetricsRegistry Reg;
  obs::Counter &C = Reg.counter("test.count");
  obs::Histogram &H = Reg.histogram("test.sizes");
  constexpr int Threads = 4;
  constexpr uint64_t PerThread = 50'000;
  std::vector<std::thread> Ts;
  for (int T = 0; T != Threads; ++T)
    Ts.emplace_back([&] {
      for (uint64_t I = 0; I != PerThread; ++I) {
        C.add(1);
        H.record(I & 1023);
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(C.value(), Threads * PerThread);
  EXPECT_EQ(H.count(), Threads * PerThread);

  obs::Gauge &G = Reg.gauge("test.depth");
  G.set(7);
  G.set(3);
  EXPECT_EQ(G.value(), 3);
  EXPECT_EQ(G.max(), 7);

  // Lookup returns the same handle; the snapshot carries every name.
  EXPECT_EQ(&Reg.counter("test.count"), &C);
  std::string Report = Reg.report();
  EXPECT_NE(Report.find("test.count"), std::string::npos);
  EXPECT_NE(Report.find("test.depth"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Traces
//===----------------------------------------------------------------------===//

const char kPipelineSource[] = R"(
channel c1: int
channel c2: int
process producer { $i = 0; while (i < 10) { out(c1, i); i = i + 1; } }
process add5 { while (true) { in(c1, $x); out(c2, x + 5); } }
process consumer {
  $i = 0;
  while (i < 10) { in(c2, $y); assert(y == i + 5); i = i + 1; }
}
)";

/// Runs \p Source to quiescence with a TracingObserver (and optionally a
/// profiler) attached; returns the machine's final instruction count.
uint64_t runTraced(const std::string &Source, obs::TraceWriter &Trace,
                   obs::IrProfiler *Profiler = nullptr) {
  auto C = compile(Source);
  if (!C)
    return 0;
  Machine M(C->Module, MachineOptions());
  obs::TracingObserver Tracer(Trace);
  Tracer.attach(M, "test");
  obs::FanoutObserver Fanout;
  Fanout.add(&Tracer);
  if (Profiler)
    Fanout.add(Profiler);
  M.setObserver(&Fanout);
  M.start();
  M.run(1'000'000);
  EXPECT_FALSE(M.error()) << M.error().Message;
  Tracer.finishTrace(M);
  return M.stats().Instructions;
}

TEST(ObsTrace, StructurallyValidChromeTrace) {
  obs::TraceWriter Trace;
  runTraced(kPipelineSource, Trace);

  obs::JsonValue Root;
  std::string Error;
  ASSERT_TRUE(obs::parseJson(Trace.json(), Root, Error)) << Error;
  ASSERT_TRUE(Root.isObject());
  const obs::JsonValue &Events = Root.get("traceEvents");
  ASSERT_TRUE(Events.isArray());
  ASSERT_GT(Events.size(), 0u);

  // Per-track checks: ts monotone non-decreasing, B/E stack-matched.
  std::map<std::pair<int64_t, int64_t>, uint64_t> LastTs;
  std::map<std::pair<int64_t, int64_t>, int> OpenSlices;
  std::map<int64_t, int> OpenFlows;
  size_t Slices = 0, Flows = 0;
  bool SawThreadNames = false;
  for (size_t I = 0; I != Events.size(); ++I) {
    const obs::JsonValue &E = Events.at(I);
    ASSERT_TRUE(E.isObject());
    const std::string &Ph = E.get("ph").asString();
    ASSERT_FALSE(Ph.empty());
    if (Ph == "M") {
      SawThreadNames |= E.get("name").asString() == "thread_name";
      continue; // Metadata carries no timestamp.
    }
    auto Track = std::make_pair(E.get("pid").asInt(), E.get("tid").asInt());
    ASSERT_TRUE(E.get("ts").isNumber()) << "event " << I << " has no ts";
    uint64_t Ts = static_cast<uint64_t>(E.get("ts").asInt());
    auto It = LastTs.find(Track);
    if (It != LastTs.end()) {
      EXPECT_GE(Ts, It->second) << "ts went backwards on track "
                                << Track.first << "/" << Track.second;
    }
    LastTs[Track] = Ts;
    if (Ph == "B") {
      ++OpenSlices[Track];
      ++Slices;
    } else if (Ph == "E") {
      EXPECT_GT(OpenSlices[Track], 0) << "E without B at event " << I;
      --OpenSlices[Track];
    } else if (Ph == "s") {
      ++OpenFlows[E.get("id").asInt()];
      ++Flows;
    } else if (Ph == "f") {
      EXPECT_EQ(OpenFlows[E.get("id").asInt()], 1)
          << "flow end without start at event " << I;
      --OpenFlows[E.get("id").asInt()];
    }
  }
  EXPECT_TRUE(SawThreadNames);
  EXPECT_GT(Slices, 0u) << "no scheduling slices recorded";
  // 20 internal rendezvous in the pipeline -> 20 flow arrows.
  EXPECT_EQ(Flows, 20u);
  for (const auto &[Track, Open] : OpenSlices)
    EXPECT_EQ(Open, 0) << "unclosed slice on track " << Track.first << "/"
                       << Track.second;
  for (const auto &[Id, Open] : OpenFlows)
    EXPECT_EQ(Open, 0) << "unmatched flow id " << Id;
}

TEST(ObsTrace, DeterministicAcrossRuns) {
  // Virtual-time traces must be byte-identical run to run.
  obs::TraceWriter A, B;
  runTraced(kPipelineSource, A);
  runTraced(kPipelineSource, B);
  EXPECT_EQ(A.json(), B.json());
}

//===----------------------------------------------------------------------===//
// Profiler
//===----------------------------------------------------------------------===//

TEST(ObsProfile, StepCountsMatchMachineStats) {
  auto C = compile(kPipelineSource);
  ASSERT_TRUE(C);
  obs::IrProfiler Profiler(C->Module);
  Machine M(C->Module, MachineOptions());
  M.setObserver(&Profiler);
  M.start();
  M.run(1'000'000);
  ASSERT_FALSE(M.error()) << M.error().Message;

  EXPECT_EQ(Profiler.totalSteps(), M.stats().Instructions);
  // Both channels committed 10 rendezvous each and someone always waits
  // at a rendezvous, so each channel accrued blocked time.
  EXPECT_GT(Profiler.blockedTime(0), 0u);
  EXPECT_GT(Profiler.blockedTime(1), 0u);
  std::string Report = Profiler.report();
  EXPECT_NE(Report.find("hotspots"), std::string::npos);
  EXPECT_NE(Report.find("producer"), std::string::npos);
  EXPECT_NE(Report.find("blocked time per channel"), std::string::npos);
}

TEST(ObsProfile, CountsAreDeterministic) {
  // The profiler observes the same deterministic schedule every run; its
  // per-PC counts are goldens in the same sense as the MC counts.
  uint64_t Steps[2];
  for (int Run = 0; Run != 2; ++Run) {
    auto C = compile(kPipelineSource);
    ASSERT_TRUE(C);
    obs::IrProfiler Profiler(C->Module);
    Machine M(C->Module, MachineOptions());
    M.setObserver(&Profiler);
    M.start();
    M.run(1'000'000);
    Steps[Run] = Profiler.totalSteps();
  }
  EXPECT_EQ(Steps[0], Steps[1]);
  EXPECT_GT(Steps[0], 0u);
}

//===----------------------------------------------------------------------===//
// Search progress telemetry
//===----------------------------------------------------------------------===//

TEST(ObsProgress, MatchesDeterminismGoldensSequential) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R =
      compileBuffer(SM, Diags, "vmmc.esp", vmmc::getVmmcEspSource());
  ASSERT_TRUE(R.Success) << Diags.renderAll();

  obs::SearchProgress Progress;
  SafetyOptions Options;
  Options.Mc.Progress = &Progress;
  McResult Result = verifyProcessMemorySafety(*R.Prog, "pageTable", Options);

  // The golden counts from test_determinism.cpp, unperturbed by the
  // telemetry sink, and the final published totals agree with them.
  EXPECT_EQ(Result.Verdict, McVerdict::OK) << Result.report();
  EXPECT_EQ(Result.StatesExplored, 221u);
  EXPECT_EQ(Result.StatesStored, 45u);
  EXPECT_EQ(Result.Transitions, 220u);
  EXPECT_EQ(Progress.totalExplored(), 221u);
  EXPECT_EQ(Progress.totalStored(), 45u);
  EXPECT_EQ(Progress.totalTransitions(), 220u);
  EXPECT_EQ(Progress.Workers.load(), 0u); // Sequential engine.
}

TEST(ObsProgress, MatchesDeterminismGoldensParallel) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R =
      compileBuffer(SM, Diags, "vmmc.esp", vmmc::getVmmcEspSource());
  ASSERT_TRUE(R.Success) << Diags.renderAll();

  obs::SearchProgress Progress;
  SafetyOptions Options;
  Options.Mc.Jobs = 4;
  Options.Mc.Progress = &Progress;
  McResult Result = verifyProcessMemorySafety(*R.Prog, "pageTable", Options);

  EXPECT_EQ(Result.Verdict, McVerdict::OK) << Result.report();
  EXPECT_EQ(Result.StatesExplored, 221u);
  EXPECT_EQ(Result.StatesStored, 45u);
  EXPECT_EQ(Result.Transitions, 220u);
  // After the workers joined the published totals are exact.
  EXPECT_EQ(Progress.totalExplored(), 221u);
  EXPECT_EQ(Progress.totalStored(), 45u);
  EXPECT_EQ(Progress.totalTransitions(), 220u);
  EXPECT_EQ(Progress.Workers.load(), 4u);
  // Work-item accounting covers every queue pop.
  ASSERT_EQ(Result.WorkerItems.size(), 4u);
  uint64_t Items = 0;
  for (uint64_t N : Result.WorkerItems)
    Items += N;
  EXPECT_EQ(Items, Result.SharedWorkItems + 1); // Plus the root item.
}

TEST(ObsProgress, StatsJsonParses) {
  auto C = compile(R"(
channel c: int
process ping { $i = 0; while (i < 3) { out(c, i); i = i + 1; } }
process pong { $i = 0; while (i < 3) { in(c, $x); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Mc;
  McResult Result = checkModel(C->Module, Mc);
  obs::JsonValue V;
  std::string Error;
  ASSERT_TRUE(obs::parseJson(Result.json(), V, Error)) << Error;
  EXPECT_EQ(V.get("verdict").asString(), "ok");
  EXPECT_EQ(static_cast<uint64_t>(V.get("states_explored").asInt()),
            Result.StatesExplored);
  EXPECT_EQ(static_cast<uint64_t>(V.get("transitions").asInt()),
            Result.Transitions);
}

//===----------------------------------------------------------------------===//
// ToolArgs extensions
//===----------------------------------------------------------------------===//

TEST(ObsToolArgs, EqualsValueSpelling) {
  const char *Argv[] = {"tool", "--max-states=123", "--name=a=b", "-o=out"};
  ToolArgs Args(4, const_cast<char **>(Argv), "tool", "usage\n");
  uint64_t N = 0;
  std::string Name, Out;
  while (Args.next()) {
    if (Args.optionUInt("--max-states", N))
      ;
    else if (Args.option("--name", Name))
      ;
    else if (Args.option("-o", Out))
      ;
    else
      Args.unknownOrBuiltin();
  }
  EXPECT_FALSE(Args.shouldExit());
  EXPECT_EQ(N, 123u);
  EXPECT_EQ(Name, "a=b"); // Only the first '=' splits.
  EXPECT_EQ(Out, "out");
}

TEST(ObsToolArgs, UnknownEqualsOptionReportsFlagOnly) {
  const char *Argv[] = {"tool", "--bogus=/some/long/path.json"};
  ToolArgs Args(2, const_cast<char **>(Argv), "tool", "usage\n");
  testing::internal::CaptureStderr();
  while (Args.next())
    Args.unknownOrBuiltin();
  std::string Err = testing::internal::GetCapturedStderr();
  EXPECT_TRUE(Args.shouldExit());
  EXPECT_EQ(Args.exitCode(), 2);
  EXPECT_NE(Err.find("unknown option '--bogus'"), std::string::npos) << Err;
  EXPECT_EQ(Err.find("/some/long/path.json"), std::string::npos) << Err;
}

TEST(ObsToolArgs, QuietIsABuiltin) {
  const char *Argv[] = {"tool", "--quiet", "input.esp"};
  ToolArgs Args(3, const_cast<char **>(Argv), "tool", "usage\n");
  std::string Input;
  while (Args.next()) {
    if (Args.positional())
      Input = Args.arg();
    else
      Args.unknownOrBuiltin();
  }
  EXPECT_FALSE(Args.shouldExit());
  EXPECT_TRUE(Args.quiet());
  EXPECT_EQ(Input, "input.esp");
}

//===----------------------------------------------------------------------===//
// Driver metrics
//===----------------------------------------------------------------------===//

TEST(ObsDriver, CompileMetricsGatedOnEnabled) {
  {
    SourceManager SM;
    DiagnosticEngine Diags(SM);
    CompileResult R = compileBuffer(SM, Diags, "t.esp", kPipelineSource);
    ASSERT_TRUE(R.Success);
    EXPECT_EQ(R.Metrics, nullptr); // Off by default: no registry built.
  }
  obs::setEnabled(true);
  {
    SourceManager SM;
    DiagnosticEngine Diags(SM);
    CompileResult R = compileBuffer(SM, Diags, "t.esp", kPipelineSource);
    ASSERT_TRUE(R.Success);
    ASSERT_NE(R.Metrics, nullptr);
    EXPECT_GT(R.Metrics->counter("driver.source_bytes").value(), 0u);
    // Stage counters exist (timings may legitimately round to 0 us).
    std::string Report = R.Metrics->report();
    EXPECT_NE(Report.find("driver.parse_us"), std::string::npos);
    EXPECT_NE(Report.find("driver.sema_us"), std::string::npos);
    EXPECT_NE(Report.find("driver.lower_us"), std::string::npos);
  }
  obs::setEnabled(false);
}

} // namespace

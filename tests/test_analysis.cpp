//===--- test_analysis.cpp - esplint static analyzer tests -----------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Each detector is exercised on a minimal seeded-defect program and on a
// corrected variant; the deadlock and leak detectors are cross-validated
// against the model checker on the same sources. The suite also covers
// the AbsPattern three-valued overlap edge cases the analyses rely on,
// and checks the built-in VMMC firmware stays finding-free.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include "analysis/Analysis.h"
#include "analysis/CommGraph.h"
#include "frontend/PatternAnalysis.h"
#include "mc/ModelChecker.h"
#include "vmmc/EspFirmwareSource.h"

using namespace esp;
using namespace esp::test;

namespace {

AnalysisResult analyze(Compilation &C, AnalysisOptions Options = {}) {
  return analyzeProgram(*C.Prog, C.Module, Options);
}

bool hasFinding(const AnalysisResult &R, AnalysisKind Kind,
                AnalysisSeverity Severity, const std::string &Fragment) {
  for (const AnalysisFinding &F : R.Findings)
    if (F.Kind == Kind && F.Severity == Severity &&
        F.Message.find(Fragment) != std::string::npos)
      return true;
  return false;
}

std::string allMessages(const AnalysisResult &R) {
  std::string Out;
  for (const AnalysisFinding &F : R.Findings) {
    Out += analysisKindName(F.Kind);
    Out += ": ";
    Out += F.Message;
    Out += "\n";
  }
  return Out;
}

// A two-process rendezvous cycle: both start with `in`, each waiting for
// the value only the other's (never-reached) `out` would send.
const char *DeadlockSource = R"(
channel a: int
channel b: int
process p { in( a, $x); out( b, x); }
process q { in( b, $y); out( a, y); }
)";

// The corrected variant: q sends first, so the rendezvous chain runs to
// completion and both processes halt.
const char *DeadlockFixedSource = R"(
channel a: int
channel b: int
process p { in( a, $x); out( b, x); }
process q { out( a, 7); in( b, $y); }
)";

// p allocates a record, sends a copy, and halts still holding its
// reference: a static leak.
const char *LeakSource = R"(
type t = record of { v: int }
channel c: t
process p { $m: t = { 1 }; out( c, m); }
process q { in( c, $x); unlink(x); }
)";

const char *LeakFixedSource = R"(
type t = record of { v: int }
channel c: t
process p { $m: t = { 1 }; out( c, m); unlink(m); }
process q { in( c, $x); unlink(x); }
)";

} // namespace

//===----------------------------------------------------------------------===//
// Deadlock detection
//===----------------------------------------------------------------------===//

TEST(AnalysisDeadlock, TwoProcessInCycleIsReported) {
  auto C = compile(DeadlockSource);
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.numErrors(), 1u) << allMessages(R);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::Deadlock, AnalysisSeverity::Error,
                         "possible deadlock"))
      << allMessages(R);
  // The witness names the wait cycle and each blocked process.
  const AnalysisFinding *F = nullptr;
  for (const AnalysisFinding &Finding : R.Findings)
    if (Finding.Kind == AnalysisKind::Deadlock)
      F = &Finding;
  ASSERT_NE(F, nullptr);
  bool SawCycle = false, SawBlockedP = false;
  for (const AnalysisFinding::Note &N : F->Notes) {
    SawCycle |= N.Message.find("wait cycle") != std::string::npos;
    SawBlockedP |= N.Message.find("'p' is blocked") != std::string::npos;
  }
  EXPECT_TRUE(SawCycle);
  EXPECT_TRUE(SawBlockedP);
}

TEST(AnalysisDeadlock, CorrectedVariantIsClean) {
  auto C = compile(DeadlockFixedSource);
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.Findings.size(), 0u) << allMessages(R);
  EXPECT_FALSE(R.DeadlockSearchIncomplete);
}

TEST(AnalysisDeadlock, AgreesWithModelChecker) {
  // The static verdicts match SPIN-style exhaustive exploration on both
  // variants (the analyses aim at the same defects, §5, without a
  // harness).
  {
    auto C = compile(DeadlockSource);
    ASSERT_TRUE(C);
    McResult Mc = checkModel(C->Module, McOptions());
    EXPECT_TRUE(Mc.foundViolation());
    EXPECT_TRUE(Mc.Deadlock);
  }
  {
    auto C = compile(DeadlockFixedSource);
    ASSERT_TRUE(C);
    McResult Mc = checkModel(C->Module, McOptions());
    EXPECT_EQ(Mc.Verdict, McVerdict::OK) << Mc.report();
  }
}

TEST(AnalysisDeadlock, TerminationIsNotDeadlock) {
  // One side halts while the other still listens: quiescence, not a wait
  // cycle — the producer/consumer shape of examples/quickstart.
  auto C = compile(R"(
channel c: int
process producer {
  $i = 0;
  while (i < 3) { out( c, i); i = i + 1; }
}
process consumer {
  while (true) { in( c, $v); }
}
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.Findings.size(), 0u) << allMessages(R);
}

TEST(AnalysisDeadlock, ExternalInterfaceKeepsProcessLive) {
  // A server blocked on an external request channel is not deadlocked:
  // the environment is always willing to send (§4.5).
  auto C = compile(R"(
channel reqC: int
interface Req(out reqC) { Request( $v ) }
process server {
  while (true) { in( reqC, $r); }
}
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.Findings.size(), 0u) << allMessages(R);
}

TEST(AnalysisDeadlock, DisjointPatternsCannotRendezvous) {
  // Reader and writer use provably disjoint values: the pattern-aware
  // pairing sees the rendezvous can never fire, so both block forever.
  auto C = compile(R"(
channel c: int
channel d: int
process p { out( c, 1); }
process q { in( c, 2); out( d, 0); }
process r { in( d, $x); }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::Deadlock, AnalysisSeverity::Error,
                         "possible deadlock"))
      << allMessages(R);
}

TEST(AnalysisDeadlock, ConfigCapMarksSearchIncomplete) {
  auto C = compile(DeadlockFixedSource);
  ASSERT_TRUE(C);
  AnalysisOptions Options;
  Options.MaxConfigs = 1;
  AnalysisResult R = analyze(*C, Options);
  EXPECT_TRUE(R.DeadlockSearchIncomplete);
}

//===----------------------------------------------------------------------===//
// Link/unlink balance
//===----------------------------------------------------------------------===//

TEST(AnalysisLinkBalance, MissingUnlinkIsLeak) {
  auto C = compile(LeakSource);
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::LinkBalance, AnalysisSeverity::Error,
                         "never unlinked"))
      << allMessages(R);
}

TEST(AnalysisLinkBalance, CorrectedVariantIsClean) {
  auto C = compile(LeakFixedSource);
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.Findings.size(), 0u) << allMessages(R);
}

TEST(AnalysisLinkBalance, AgreesWithModelCheckerOnLeak) {
  {
    auto C = compile(LeakSource);
    ASSERT_TRUE(C);
    McResult Mc = checkModel(C->Module, McOptions());
    EXPECT_TRUE(Mc.foundViolation()) << Mc.report();
    EXPECT_GT(Mc.LeakedObjects, 0u) << Mc.report();
  }
  {
    auto C = compile(LeakFixedSource);
    ASSERT_TRUE(C);
    McResult Mc = checkModel(C->Module, McOptions());
    EXPECT_EQ(Mc.Verdict, McVerdict::OK) << Mc.report();
  }
}

TEST(AnalysisLinkBalance, DoubleUnlinkIsUnderflow) {
  auto C = compile(R"(
type t = record of { v: int }
channel c: t
process p { $m: t = { 1 }; out( c, m); unlink(m); unlink(m); }
process q { in( c, $x); unlink(x); }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::LinkBalance, AnalysisSeverity::Error,
                         "refcount underflow"))
      << allMessages(R);
}

TEST(AnalysisLinkBalance, LinkBalancesAnExtraUnlink) {
  auto C = compile(R"(
type t = record of { v: int }
channel c: t
process p { $m: t = { 1 }; link(m); out( c, m); unlink(m); unlink(m); }
process q { in( c, $x); unlink(x); }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.Findings.size(), 0u) << allMessages(R);
}

TEST(AnalysisLinkBalance, PathDependentReleaseIsWarning) {
  // Only one arm of a runtime branch unlinks: a may-leak at halt and a
  // may-underflow at the second unlink, both warnings, no errors.
  auto C = compile(R"(
type t = record of { v: int }
channel c: t
channel f: int
process p {
  $m: t = { 1 };
  out( c, m);
  in( f, $flag);
  if (flag == 1) { unlink(m); }
}
process q { in( c, $x); unlink(x); out( f, 1); }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.numErrors(), 0u) << allMessages(R);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::LinkBalance,
                         AnalysisSeverity::Warning, "may not be unlinked"))
      << allMessages(R);
}

TEST(AnalysisLinkBalance, ConstantGuardedUnlinkIsClean) {
  // The sliding-window idiom: a `const`-guarded release. The pruned CFG
  // keeps only the live arm, so KEEP = 1 balances exactly.
  auto C = compile(R"(
const KEEP = 1;
type t = record of { v: int }
channel c: t
process p {
  $m: t = { 1 };
  out( c, m);
  if (KEEP == 1) { unlink(m); }
}
process q { in( c, $x); unlink(x); }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.Findings.size(), 0u) << allMessages(R);
}

TEST(AnalysisLinkBalance, ReceiveBinderMustBeReleased) {
  // The receiver owns what it binds; re-receiving into the binder drops
  // the previous message. Back-to-back receives make the drop definite.
  auto C = compile(R"(
type t = record of { v: int }
channel c: t
process p {
  out( c, { 1 });
  out( c, { 2 });
}
process q {
  in( c, $x);
  in( c, $x);
  unlink(x);
}
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::LinkBalance,
                         AnalysisSeverity::Error, "drops the last reference"))
      << allMessages(R);
}

TEST(AnalysisLinkBalance, ReceiveInLoopIsMayDrop) {
  // In a loop the binder is empty on the first iteration and full on the
  // rest; the path-insensitive join makes the drop a warning, not an
  // error.
  auto C = compile(R"(
type t = record of { v: int }
channel c: t
process p {
  $i = 0;
  while (i < 2) { out( c, { i }); i = i + 1; }
}
process q {
  $j = 0;
  while (j < 2) { in( c, $x); j = j + 1; }
}
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::LinkBalance,
                         AnalysisSeverity::Warning, "drop"))
      << allMessages(R);
  EXPECT_EQ(R.numErrors(), 0u) << allMessages(R);
}

TEST(AnalysisLinkBalance, AliasedVariablesAreNotTracked) {
  // `n = m` makes the ownership ambiguous; the analysis gives up on both
  // rather than guess (path-insensitive, alias-free tracking only).
  auto C = compile(R"(
type t = record of { v: int }
channel c: t
process p {
  $m: t = { 1 };
  $n: t = m;
  out( c, n);
  unlink(m);
}
process q { in( c, $x); unlink(x); }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.Findings.size(), 0u) << allMessages(R);
}

//===----------------------------------------------------------------------===//
// Reachability / usefulness
//===----------------------------------------------------------------------===//

TEST(AnalysisReachability, CodeAfterInfiniteLoopIsUnreachable) {
  auto C = compile(R"(
channel c: int
process p { while (true) { out( c, 1); } out( c, 2); }
process q { while (true) { in( c, $x); } }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::Reachability,
                         AnalysisSeverity::Warning, "unreachable"))
      << allMessages(R);
  EXPECT_EQ(R.numErrors(), 0u);
}

TEST(AnalysisReachability, StaticallyFalseGuardIsReported) {
  auto C = compile(R"(
const ENABLE = 0;
channel c: int
process p {
  while (true) {
    alt {
      case( in( c, $x)) { }
      case( ENABLE == 1, in( c, 5)) { }
    }
  }
}
process q { while (true) { out( c, 1); } }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::Reachability,
                         AnalysisSeverity::Warning, "statically false"))
      << allMessages(R);
}

TEST(AnalysisReachability, ReceiveNoWriterEverMatchesIsDead) {
  // Writers exist but all send values disjoint from the receive pattern:
  // the dispatch case is dead (the pattern-dispatch view of §4.2).
  auto C = compile(R"(
channel c: int
process p { while (true) { out( c, 1); } }
process q {
  while (true) {
    alt {
      case( in( c, 1)) { }
      case( in( c, 3)) { }
    }
  }
}
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::Reachability,
                         AnalysisSeverity::Warning, "can never fire"))
      << allMessages(R);
}

TEST(AnalysisReachability, ChannelWithOnlyUnreachableReadersIsReported) {
  auto C = compile(R"(
channel c: int
channel d: int
process p { while (true) { out( c, 1); } }
process q { while (true) { in( c, $x); } in( d, $y); }
process r { while (true) { out( d, 2); } }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::Reachability,
                         AnalysisSeverity::Warning,
                         "all of its receives are unreachable"))
      << allMessages(R);
}

//===----------------------------------------------------------------------===//
// AbsPattern three-valued overlap edge cases
//===----------------------------------------------------------------------===//

TEST(AbsPatternOverlap, UnknownLeafYieldsUnknown) {
  AbsPattern Unknown;
  Unknown.K = AbsPattern::Unknown;
  AbsPattern Five;
  Five.K = AbsPattern::Const;
  Five.Value = 5;
  EXPECT_EQ(AbsPattern::overlap(Unknown, Five),
            AbsPattern::Overlap::Unknown);
}

TEST(AbsPatternOverlap, UnionArmsDiscriminate) {
  // Same arm with Unknown payloads: three-valued Unknown. Different
  // arms: definitely disjoint, regardless of payload.
  AbsPattern PayloadA;
  PayloadA.K = AbsPattern::Unknown;
  AbsPattern ArmA;
  ArmA.K = AbsPattern::Union;
  ArmA.Arm = 0;
  ArmA.Kids.push_back(PayloadA);

  AbsPattern ArmASame = ArmA;
  EXPECT_EQ(AbsPattern::overlap(ArmA, ArmASame),
            AbsPattern::Overlap::Unknown);

  AbsPattern ArmB = ArmA;
  ArmB.Arm = 1;
  EXPECT_EQ(AbsPattern::overlap(ArmA, ArmB), AbsPattern::Overlap::Disjoint);
}

TEST(AbsPatternOverlap, RecordsCombineChildVerdicts) {
  auto constPat = [](int64_t V) {
    AbsPattern P;
    P.K = AbsPattern::Const;
    P.Value = V;
    return P;
  };
  AbsPattern R1;
  R1.K = AbsPattern::Record;
  R1.Kids = {constPat(1), constPat(2)};
  AbsPattern R2;
  R2.K = AbsPattern::Record;
  R2.Kids = {constPat(1), constPat(3)};
  // One provably-disjoint component makes the whole record disjoint.
  EXPECT_EQ(AbsPattern::overlap(R1, R2), AbsPattern::Overlap::Disjoint);
  AbsPattern R3 = R1;
  EXPECT_EQ(AbsPattern::overlap(R1, R3),
            AbsPattern::Overlap::Overlapping);
}

TEST(AbsPatternOverlap, BindersCoverEverything) {
  auto C = compile(R"(
type u = union of { a: int, b: int }
channel c: u
process p { out( c, { a |> 1 }); }
process q { in( c, $x); unlink(x); }
)");
  ASSERT_TRUE(C);
  std::vector<ChannelReader> Readers =
      collectChannelReaders(*C->Prog, C->Prog->Channels[0].get());
  ASSERT_EQ(Readers.size(), 1u);
  EXPECT_TRUE(Readers[0].Abs.coversAll());
}

TEST(PatternAnalysisDiagnostics, ZeroReaderChannelWarns) {
  expectDiagnostic(R"(
channel c: int
process p { out( c, 1); }
)",
                   "never read");
}

//===----------------------------------------------------------------------===//
// Corpus: the analyses stay quiet on known-good programs
//===----------------------------------------------------------------------===//

TEST(AnalysisCorpus, VmmcFirmwareIsClean) {
  auto C = compile(vmmc::getVmmcEspSource());
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_EQ(R.numErrors(), 0u) << allMessages(R);
  EXPECT_EQ(R.numWarnings(), 0u) << allMessages(R);
  EXPECT_FALSE(R.DeadlockSearchIncomplete);
}

//===----------------------------------------------------------------------===//
// Interference (independence analysis)
//===----------------------------------------------------------------------===//

TEST(AnalysisInterference, SelfRendezvousChannelWarns) {
  // Both endpoints of `a` live in one process: rendezvous requires two
  // parties, so the send can never complete.
  auto C = compile(R"(
channel a: int
process p { out( a, 1); in( a, $x); }
)");
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::Interference,
                         AnalysisSeverity::Warning,
                         "self-rendezvous deadlock"))
      << allMessages(R);
}

TEST(AnalysisInterference, TwoPartyChannelIsClean) {
  auto C = compile(DeadlockFixedSource);
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  for (const AnalysisFinding &F : R.Findings)
    EXPECT_NE(F.Kind, AnalysisKind::Interference) << allMessages(R);
}

TEST(AnalysisInterference, ReportSummarizesConflictClasses) {
  auto C = compile(DeadlockFixedSource);
  ASSERT_TRUE(C);
  AnalysisOptions Options;
  Options.ReportInterference = true;
  AnalysisResult R = analyze(*C, Options);
  EXPECT_TRUE(hasFinding(R, AnalysisKind::Interference, AnalysisSeverity::Note,
                         "statically commuting"))
      << allMessages(R);
}

//===----------------------------------------------------------------------===//
// Reporting and rendering
//===----------------------------------------------------------------------===//

TEST(AnalysisReporting, DemoteErrorsReportsWarnings) {
  auto C = compile(LeakSource);
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  ASSERT_GT(R.numErrors(), 0u);
  reportFindings(R, *C->Diags, /*DemoteErrors=*/true);
  EXPECT_EQ(C->Diags->getNumErrors(), 0u);
  EXPECT_GT(C->Diags->getNumWarnings(), 0u);
  EXPECT_TRUE(C->Diags->containsMessage("[link-balance]"));
}

TEST(AnalysisReporting, TextRenderingNamesDetector) {
  auto C = compile(DeadlockSource);
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  std::string Text = renderFindingsText(R, C->SM);
  EXPECT_NE(Text.find("error: [deadlock]"), std::string::npos) << Text;
  EXPECT_NE(Text.find("test.esp:"), std::string::npos) << Text;
}

TEST(AnalysisReporting, JsonRenderingIsStructured) {
  auto C = compile(LeakSource);
  ASSERT_TRUE(C);
  AnalysisResult R = analyze(*C);
  std::string Json = renderFindingsJson(R, C->SM);
  EXPECT_NE(Json.find("\"detector\": \"link-balance\""), std::string::npos)
      << Json;
  EXPECT_NE(Json.find("\"severity\": \"error\""), std::string::npos) << Json;
  EXPECT_NE(Json.find("\"line\":"), std::string::npos) << Json;
}

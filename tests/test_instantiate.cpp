//===--- test_instantiate.cpp - Multi-copy instantiation tests -----------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// §5.2: multiple copies of one ESP program, wired together by a harness,
// model several machines' firmware communicating — here verified by the
// native model checker.
//
//===----------------------------------------------------------------------===//

#include "frontend/Instantiate.h"
#include "mc/ModelChecker.h"
#include "TestHelpers.h"

using namespace esp;
using namespace esp::test;

namespace {

/// A miniature "firmware": accepts a request on its device channel and
/// emits a wire packet; delivers arriving packets to its notify channel.
const char *MiniFirmware = R"(
type pktT = record of { v: int }
channel devReqC: pktT
interface DevReq(out devReqC) { Post( { $v } ) }
channel wireOutC: pktT
interface WireOut(in wireOutC) { Tx( { $v } ) }
channel wireInC: pktT
interface WireIn(out wireInC) { Rx( { $v } ) }
channel notifyC: int
interface Notify(in notifyC) { Recv( $v ) }

process fw {
  while (true) {
    alt {
      case( in( devReqC, { $v })) { out( wireOutC, { v + 1 }); }
      case( in( wireInC, { $w })) { out( notifyC, w); }
    }
  }
}
)";

TEST(Instantiate, RenamesTopLevelNamesPerInstance) {
  InstantiateOptions Options;
  Options.Instances = 2;
  std::string Merged = instantiateProgram(MiniFirmware, Options);
  EXPECT_NE(Merged.find("m0_fw"), std::string::npos);
  EXPECT_NE(Merged.find("m1_fw"), std::string::npos);
  EXPECT_NE(Merged.find("m0_devReqC"), std::string::npos);
  EXPECT_NE(Merged.find("m1_wireInC"), std::string::npos);
  // Interfaces stripped so the harness can drive the device channels.
  EXPECT_EQ(Merged.find("interface"), std::string::npos);
}

TEST(Instantiate, FieldNamesAndSelectorsAreNotRenamed) {
  std::string Source = R"(
type uT = union of { fw: int }
channel fw: uT
process p { in(fw, { fw |> $x }); }
)";
  InstantiateOptions Options;
  Options.Instances = 1;
  Options.StripInterfaces = false;
  std::string Merged = instantiateProgram(Source, Options);
  // The channel and process use are renamed; the union selector is not.
  EXPECT_NE(Merged.find("channel m0_fw"), std::string::npos);
  EXPECT_NE(Merged.find("fw |>"), std::string::npos);
  EXPECT_EQ(Merged.find("m0_fw |>"), std::string::npos);
}

TEST(Instantiate, TwoMachinesVerifyEndToEnd) {
  // The harness plays host + network: posts a request into machine 0,
  // shuttles the wire packet to machine 1, and asserts the delivered
  // value (exactly the paper's test.SPIN role).
  const char *Harness = R"(
process host {
  out( m0_devReqC, { m0_pktT_make });
  in( m0_wireOutC, { $w });
  out( m1_wireInC, { w });
  in( m1_notifyC, $got);
  assert(got == 42);
}
)";
  // m0_pktT_make is not a thing; inline the value instead.
  std::string HarnessFixed = Harness;
  size_t Pos = HarnessFixed.find("{ m0_pktT_make }");
  HarnessFixed.replace(Pos, strlen("{ m0_pktT_make }"), "{ 41 }");

  InstantiateOptions Options;
  Options.Instances = 2;
  std::string Merged = instantiateProgram(MiniFirmware, Options,
                                          HarnessFixed);
  Compilation C;
  C.Prog = Parser::parse(C.SM, *C.Diags, "merged.esp", Merged);
  ASSERT_TRUE(C.Prog) << C.Diags->renderAll();
  ASSERT_TRUE(checkProgram(*C.Prog, *C.Diags)) << C.Diags->renderAll();
  ASSERT_EQ(C.Prog->Processes.size(), 3u); // m0_fw, m1_fw, host.
  C.Module = lowerProgram(*C.Prog);
  McOptions Mc;
  Mc.CheckDeadlock = false; // The firmware copies loop forever.
  McResult R = checkModel(C.Module, Mc);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
  EXPECT_GT(R.StatesExplored, 1u);
}

TEST(Instantiate, SeededCrossMachineBugIsFound) {
  const char *Harness = R"(
process host {
  out( m0_devReqC, { 1 });
  in( m0_wireOutC, { $w });
  out( m1_wireInC, { w });
  in( m1_notifyC, $got);
  assert(got == 1);   // Wrong: fw increments, so got == 2.
}
)";
  InstantiateOptions Options;
  Options.Instances = 2;
  std::string Merged = instantiateProgram(MiniFirmware, Options, Harness);
  Compilation C;
  C.Prog = Parser::parse(C.SM, *C.Diags, "merged.esp", Merged);
  ASSERT_TRUE(C.Prog) << C.Diags->renderAll();
  ASSERT_TRUE(checkProgram(*C.Prog, *C.Diags)) << C.Diags->renderAll();
  C.Module = lowerProgram(*C.Prog);
  McOptions Mc;
  Mc.CheckDeadlock = false;
  McResult R = checkModel(C.Module, Mc);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::AssertFailed);
}

TEST(Instantiate, InstancesDoNotInterfere) {
  // Three instances; the harness uses only instance 2. Instances 0 and 1
  // stay parked without confusing the checker.
  const char *Harness = R"(
process host {
  out( m2_devReqC, { 7 });
  in( m2_wireOutC, { $w });
  assert(w == 8);
}
)";
  InstantiateOptions Options;
  Options.Instances = 3;
  std::string Merged = instantiateProgram(MiniFirmware, Options, Harness);
  Compilation C;
  C.Prog = Parser::parse(C.SM, *C.Diags, "merged.esp", Merged);
  ASSERT_TRUE(C.Prog) << C.Diags->renderAll();
  ASSERT_TRUE(checkProgram(*C.Prog, *C.Diags)) << C.Diags->renderAll();
  C.Module = lowerProgram(*C.Prog);
  McOptions Mc;
  Mc.CheckDeadlock = false;
  McResult R = checkModel(C.Module, Mc);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
}

} // namespace

//===--- test_driver.cpp - esp::compile facade tests ---------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Round-trip tests for the driver facade: every tool, test, and bench
// compiles through esp::compile, so the facade must expose the whole
// pipeline — parse, check, lower, optimize — with the same semantics the
// stages have individually.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "runtime/Machine.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace esp;

namespace {

const char kPingPong[] = R"(
channel c : int;

process ping {
  $n = 0;
  while (n < 3) { out(c, n); n = n + 1; }
}

process pong {
  $seen = 0;
  while (seen < 3) { in(c, $x); seen = seen + 1; }
}
)";

TEST(Driver, CompileBufferRoundTrip) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R = compileBuffer(SM, Diags, "pp.esp", kPingPong);
  ASSERT_TRUE(R.Success) << Diags.renderAll();
  ASSERT_TRUE(R.Prog);
  EXPECT_EQ(R.Prog->Processes.size(), 2u);
  EXPECT_EQ(R.Prog->Channels.size(), 1u);
  EXPECT_EQ(R.Module.Procs.size(), 2u);
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(Driver, CompiledModuleRunsOnTheMachine) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R = compileBuffer(SM, Diags, "pp.esp", kPingPong);
  ASSERT_TRUE(R.Success) << Diags.renderAll();
  Machine M(R.Module, MachineOptions());
  M.start();
  StepResult Res = M.run(100000);
  EXPECT_EQ(Res, StepResult::Halted);
  EXPECT_EQ(M.stats().Rendezvous, 3u);
}

TEST(Driver, OptimizeProducesBothLowerings) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileOptions Options;
  Options.Optimize = true;
  CompileResult R = compileBuffer(SM, Diags, "pp.esp", kPingPong, Options);
  ASSERT_TRUE(R.Success) << Diags.renderAll();
  // The unoptimized lowering is what the verifier consumes (§5.2); it
  // must still be populated alongside the optimized one.
  EXPECT_EQ(R.Module.Procs.size(), 2u);
  EXPECT_EQ(R.Optimized.Procs.size(), 2u);
  // The §6.1 passes compact the IR: never more instructions than the
  // unoptimized lowering.
  for (size_t I = 0; I != R.Module.Procs.size(); ++I)
    EXPECT_LE(R.Optimized.Procs[I].Insts.size(),
              R.Module.Procs[I].Insts.size());
}

TEST(Driver, OptOptionsArePassedThrough) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileOptions Options;
  Options.Optimize = true;
  Options.Opt = OptOptions::none();
  CompileResult R = compileBuffer(SM, Diags, "pp.esp", kPingPong, Options);
  ASSERT_TRUE(R.Success) << Diags.renderAll();
  EXPECT_EQ(R.Opt.JumpsThreaded, 0u);
  EXPECT_EQ(R.Opt.DeadStoresRemoved, 0u);
  for (size_t I = 0; I != R.Module.Procs.size(); ++I)
    EXPECT_EQ(R.Optimized.Procs[I].Insts.size(),
              R.Module.Procs[I].Insts.size());
}

TEST(Driver, ConcatenatesHarnessInputs) {
  // The pgm.SPIN + test.SPIN layout: the harness file contributes its
  // processes to the same program.
  const char kProgram[] = "channel c : int;\n"
                          "process p { out(c, 1); }\n";
  const char kHarness[] = "process q { in(c, $x); assert(x == 1); }\n";
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R = esp::compile(
      SM, Diags,
      {CompileInput::buffer("pgm.esp", kProgram),
       CompileInput::buffer("test.esp", kHarness)});
  ASSERT_TRUE(R.Success) << Diags.renderAll();
  EXPECT_EQ(R.Prog->Processes.size(), 2u);
  // The combined buffer is registered under the first input's name and
  // carries the banner comments marking each input's contribution.
  std::string_view Buffer = SM.getBuffer(0);
  EXPECT_NE(Buffer.find("// ---- pgm.esp ----"), std::string_view::npos);
  EXPECT_NE(Buffer.find("// ---- test.esp ----"), std::string_view::npos);
}

TEST(Driver, ParseErrorFailsWithDiagnostics) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R = compileBuffer(SM, Diags, "bad.esp", "process {");
  EXPECT_FALSE(R.Success);
  EXPECT_FALSE(R);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_TRUE(R.IOError.empty());
}

TEST(Driver, SemaErrorFailsButKeepsTheProgram) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R = compileBuffer(
      SM, Diags, "bad.esp", "channel c : int;\nprocess p { out(c, true); }\n");
  EXPECT_FALSE(R.Success);
  EXPECT_TRUE(Diags.hasErrors());
  // The parsed program survives for tools that inspect it anyway.
  EXPECT_TRUE(R.Prog);
}

TEST(Driver, MissingFileReportsIOErrorWithoutDiagnostics) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R = esp::compile(
      SM, Diags, {CompileInput::file("/nonexistent/definitely-missing.esp")});
  EXPECT_FALSE(R.Success);
  EXPECT_NE(R.IOError.find("definitely-missing.esp"), std::string::npos);
  EXPECT_FALSE(Diags.hasErrors()) << "I/O failures are not diagnostics";
}

TEST(Driver, EmptyInputListIsAnIOError) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R = esp::compile(SM, Diags, {});
  EXPECT_FALSE(R.Success);
  EXPECT_EQ(R.IOError, "no input files");
}

} // namespace

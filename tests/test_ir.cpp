//===--- test_ir.cpp - IR lowering and optimization tests ----------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

using namespace esp;
using namespace esp::test;

namespace {

const ProcIR *procIR(const Compilation &C, const std::string &Name) {
  for (const ProcIR &P : C.Module.Procs)
    if (P.Proc->Name == Name)
      return &P;
  return nullptr;
}

unsigned countKind(const ProcIR &P, InstKind Kind) {
  unsigned N = 0;
  for (const Inst &I : P.Insts)
    N += I.Kind == Kind;
  return N;
}

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

TEST(IRLowering, BlockPointsAreTheStates) {
  // The paper's add5 has two states: blocked at in and blocked at out
  // (§4.3).
  auto C = compile(R"(
channel c1: int
channel c2: int
process add5 { while (true) { in(c1, $i); out(c2, i + 5); } }
process w { out(c1, 1); }
process r { in(c2, $x); }
)");
  ASSERT_TRUE(C);
  const ProcIR *P = procIR(*C, "add5");
  ASSERT_TRUE(P);
  EXPECT_EQ(P->blockPoints().size(), 2u);
}

TEST(IRLowering, IfElseProducesBranchAndJump) {
  auto C = compile(R"(
channel c: int
process p {
  in(c, $x);
  $y = 0;
  if (x > 0) { y = 1; } else { y = 2; }
  out(d, y);
}
channel d: int
process w { out(c, 5); in(d, $r); }
)");
  ASSERT_TRUE(C);
  const ProcIR *P = procIR(*C, "p");
  ASSERT_TRUE(P);
  EXPECT_EQ(countKind(*P, InstKind::Branch), 1u);
  EXPECT_GE(countKind(*P, InstKind::Jump), 1u);
}

TEST(IRLowering, WhileLowersToBackedge) {
  auto C = compile(R"(
channel c: int
process p { $i = 0; while (i < 3) { i = i + 1; } out(c, i); }
process q { in(c, $x); assert(x == 3); }
)");
  ASSERT_TRUE(C);
  const ProcIR *P = procIR(*C, "p");
  ASSERT_TRUE(P);
  bool HasBackedge = false;
  for (unsigned I = 0; I != P->Insts.size(); ++I)
    if (P->Insts[I].Kind == InstKind::Jump && P->Insts[I].Target <= I)
      HasBackedge = true;
  EXPECT_TRUE(HasBackedge);
}

TEST(IRLowering, AltCasesCarryGuardsAndTargets) {
  auto C = compile(R"(
channel a: int
channel b: int
process p {
  $n = 0;
  while (true) {
    alt {
      case( n < 5, in( a, $x)) { n = n + 1; }
      case( in( b, $y)) { n = 0; }
    }
  }
}
process w { out(a, 1); out(b, 2); }
)");
  ASSERT_TRUE(C);
  const ProcIR *P = procIR(*C, "p");
  ASSERT_TRUE(P);
  const Inst *Block = nullptr;
  for (const Inst &I : P->Insts)
    if (I.Kind == InstKind::Block)
      Block = &I;
  ASSERT_TRUE(Block);
  ASSERT_EQ(Block->Cases.size(), 2u);
  EXPECT_NE(Block->Cases[0].Guard, nullptr);
  EXPECT_EQ(Block->Cases[1].Guard, nullptr);
  EXPECT_NE(Block->Cases[0].Target, Block->Cases[1].Target);
}

TEST(IRLowering, EveryProcessEndsWithHalt) {
  auto C = compile(R"(
channel c: int
process p { out(c, 1); }
process q { in(c, $x); }
)");
  ASSERT_TRUE(C);
  for (const ProcIR &P : C->Module.Procs) {
    ASSERT_FALSE(P.Insts.empty());
    EXPECT_EQ(P.Insts.back().Kind, InstKind::Halt);
  }
}

TEST(IRLowering, DumpIsReadable) {
  auto C = compile(R"(
channel c: int
process p { $i = 0; while (i < 2) { out(c, i); i = i + 1; } }
process q { in(c, $x); in(c, $y); }
)");
  ASSERT_TRUE(C);
  std::string Dump = C->Module.dump();
  EXPECT_NE(Dump.find("process p"), std::string::npos);
  EXPECT_NE(Dump.find("block"), std::string::npos);
  EXPECT_NE(Dump.find("out(c"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Liveness and dead-store elimination
//===----------------------------------------------------------------------===//

TEST(IRPasses, DeadStoreEliminated) {
  const char *Source = R"(
channel c: int
process p {
  $dead = 42;
  $live = 7;
  dead = 99;
  out(c, live);
}
process q { in(c, $x); }
)";
  auto Unopt = compile(Source);
  ASSERT_TRUE(Unopt);
  OptOptions DceOnly = OptOptions::none();
  DceOnly.EliminateDeadStores = true;
  DceOnly.ThreadJumps = true;
  OptStats Stats = optimizeModule(Unopt->Module, DceOnly);
  EXPECT_GE(Stats.DeadStoresRemoved, 2u); // Both stores to `dead`.
  // Still runs correctly.
  Machine M(Unopt->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Halted) << M.error().Message;
}

TEST(IRPasses, LiveStoreKept) {
  auto C = compile(R"(
channel c: int
process p { $x = 1; x = 2; out(c, x); }
process q { in(c, $v); assert(v == 2); }
)");
  ASSERT_TRUE(C);
  OptStats Stats = optimizeModule(C->Module, OptOptions::all());
  // The first store to x is dead (overwritten), the second is live.
  EXPECT_EQ(Stats.DeadStoresRemoved, 1u);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Halted) << M.error().Message;
}

TEST(IRPasses, LoopCarriedVariableNotEliminated) {
  auto C = compile(R"(
channel c: int
process p {
  $i = 0;
  while (i < 4) { i = i + 1; }
  out(c, i);
}
process q { in(c, $v); assert(v == 4); }
)");
  ASSERT_TRUE(C);
  OptStats Stats = optimizeModule(C->Module, OptOptions::all());
  EXPECT_EQ(Stats.DeadStoresRemoved, 0u);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Halted) << M.error().Message;
}

TEST(IRPasses, ComputeLiveOutRespectsBranches) {
  auto C = compile(R"(
channel c: int
process p {
  in(c, $x);
  $y = 1;
  if (x > 0) { out(d, y); } else { out(d, 0); }
}
channel d: int
process w { out(c, 5); in(d, $r); }
)");
  ASSERT_TRUE(C);
  const ProcIR *P = procIR(*C, "p");
  ASSERT_TRUE(P);
  std::vector<std::vector<uint64_t>> LiveOut = computeLiveOut(*P);
  ASSERT_EQ(LiveOut.size(), P->Insts.size());
  // y (slot of the DeclInit) must be live-out of its own definition
  // because one branch uses it.
  for (unsigned I = 0; I != P->Insts.size(); ++I) {
    if (P->Insts[I].Kind == InstKind::DeclInit &&
        P->Insts[I].Var->Name == "y") {
      unsigned Slot = P->Insts[I].Var->Slot;
      EXPECT_TRUE((LiveOut[I][Slot / 64] >> (Slot % 64)) & 1);
    }
  }
}

TEST(IRPasses, JumpThreadingCollapsesChains) {
  auto C = compile(R"(
channel c: int
process p {
  $x = 0;
  if (true) { if (true) { x = 1; } }
  out(c, x);
}
process q { in(c, $v); }
)");
  ASSERT_TRUE(C);
  unsigned Before = static_cast<unsigned>(C->Module.Procs[0].Insts.size());
  OptOptions JumpsOnly = OptOptions::none();
  JumpsOnly.ThreadJumps = true;
  optimizeModule(C->Module, JumpsOnly);
  unsigned After = static_cast<unsigned>(C->Module.Procs[0].Insts.size());
  EXPECT_LE(After, Before);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Halted) << M.error().Message;
}

//===----------------------------------------------------------------------===//
// Channel-level optimizations (§6.1)
//===----------------------------------------------------------------------===//

TEST(IRPasses, AllocationSinkingMarksAllocatingOutCases) {
  auto C = compile(R"(
type rT = record of { a: int }
channel c: rT
channel d: int
process p {
  alt {
    case( out( c, { 1 })) { }
    case( out( d, 2)) { }
  }
}
process q { in(c, $r); }
process s { in(d, $x); }
)");
  ASSERT_TRUE(C);
  OptStats Stats = optimizeModule(C->Module, OptOptions::all());
  EXPECT_EQ(Stats.CasesLazified, 1u); // Only the allocating case.
}

TEST(IRPasses, ElisionRequiresAllReadersToDestructure) {
  // Reader binds the whole record: the shell must exist, no elision.
  auto C = compile(R"(
type rT = record of { a: int, b: int }
channel c: rT
process p { out(c, { 1, 2 }); }
process q { in(c, $whole); assert(whole.a == 1); unlink(whole); }
)");
  ASSERT_TRUE(C);
  OptStats Stats = optimizeModule(C->Module, OptOptions::all());
  EXPECT_EQ(Stats.CasesElided, 0u);
}

TEST(IRPasses, ElisionAppliedWhenAllDestructure) {
  auto C = compile(R"(
type rT = record of { a: int, b: int }
channel c: rT
process p { out(c, { 1, 2 }); }
process q { in(c, { $a, $b }); assert(a + b == 3); }
)");
  ASSERT_TRUE(C);
  OptStats Stats = optimizeModule(C->Module, OptOptions::all());
  EXPECT_EQ(Stats.CasesElided, 1u);
  // The elided program allocates nothing at all.
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Halted) << M.error().Message;
  EXPECT_EQ(M.heap().getTotalAllocations(), 0u);
}

TEST(IRPasses, MatchFreeRequiresCatchAllReaders) {
  auto C = compile(R"(
type rT = record of { tag: int }
channel c: rT
process p { out(c, { 0 }); }
process q { in(c, { 0 }); }
)");
  ASSERT_TRUE(C);
  optimizeModule(C->Module, OptOptions::all());
  const ProcIR *P = procIR(*C, "p");
  for (const Inst &I : P->Insts)
    if (I.Kind == InstKind::Block) {
      EXPECT_FALSE(I.Cases[0].MatchFree); // Reader matches on a value.
    }
}

TEST(IRPasses, OptimizationPreservesSemantics) {
  // Property check: the pipeline computes the same outputs with every
  // optimization configuration.
  const char *Source = R"(
type rT = record of { v: int, w: int }
channel c: rT
channel d: int
process p {
  $i = 0;
  while (i < 8) {
    $tmp = i * 2;
    out(c, { tmp, i });
    i = i + 1;
  }
}
process q {
  $n = 0;
  while (n < 8) {
    in(c, { $v, $w });
    assert(v == w * 2);
    out(d, v + w);
    n = n + 1;
  }
}
process r {
  $n = 0;
  while (n < 8) { in(d, $s); assert(s == 3 * n); n = n + 1; }
}
)";
  for (bool Jumps : {false, true})
    for (bool Dce : {false, true})
      for (bool Sink : {false, true})
        for (bool Elide : {false, true}) {
          OptOptions Options = OptOptions::none();
          Options.ThreadJumps = Jumps;
          Options.EliminateDeadStores = Dce;
          Options.SinkAllocations = Sink;
          Options.ElideRecordAllocs = Elide;
          auto C = compile(Source, &Options);
          ASSERT_TRUE(C);
          Machine M(C->Module, MachineOptions());
          M.start();
          EXPECT_EQ(M.run(10000), Machine::StepResult::Halted)
              << "config " << Jumps << Dce << Sink << Elide << ": "
              << M.error().Message;
        }
}

} // namespace

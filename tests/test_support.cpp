//===--- test_support.cpp - Support library unit tests -------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "support/StringExtras.h"
#include "support/ToolArgs.h"

#include <gtest/gtest.h>

#include <vector>

using namespace esp;

namespace {

/// Builds a mutable argv for ToolArgs from string literals.
struct ArgvFixture {
  std::vector<std::string> Store;
  std::vector<char *> Ptrs;

  explicit ArgvFixture(std::vector<std::string> Args)
      : Store(std::move(Args)) {
    for (std::string &A : Store)
      Ptrs.push_back(A.data());
  }
  int argc() const { return static_cast<int>(Ptrs.size()); }
  char **argv() { return Ptrs.data(); }
};

TEST(ToolArgs, RepeatedOptionLastValueWins) {
  // Scripted invocations append overrides: the last occurrence must win,
  // in both spellings, without becoming an error.
  ArgvFixture Args({"tool", "--out", "first", "--out=second", "--n", "3",
                    "--n", "7"});
  ToolArgs TA(Args.argc(), Args.argv(), "tool", "usage\n");
  std::string Out;
  uint64_t N = 0;
  while (TA.next()) {
    if (TA.option("--out", Out))
      ;
    else if (TA.optionUInt("--n", N))
      ;
    else
      TA.unknownOrBuiltin();
  }
  EXPECT_FALSE(TA.shouldExit());
  EXPECT_EQ(Out, "second");
  EXPECT_EQ(N, 7u);
}

TEST(ToolArgs, SingleOccurrencesStillParse) {
  ArgvFixture Args({"tool", "--out=only", "--n", "5"});
  ToolArgs TA(Args.argc(), Args.argv(), "tool", "usage\n");
  std::string Out;
  uint64_t N = 0;
  while (TA.next()) {
    if (TA.option("--out", Out))
      ;
    else if (TA.optionUInt("--n", N))
      ;
    else
      TA.unknownOrBuiltin();
  }
  EXPECT_FALSE(TA.shouldExit());
  EXPECT_EQ(Out, "only");
  EXPECT_EQ(N, 5u);
}

TEST(SourceManager, DecodeLinesAndColumns) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("a.esp", "one\ntwo\nthree\n");
  DecodedLoc L0 = SM.decode(SourceLoc(Id, 0));
  EXPECT_EQ(L0.Line, 1u);
  EXPECT_EQ(L0.Column, 1u);
  DecodedLoc L5 = SM.decode(SourceLoc(Id, 5)); // 'w' of two.
  EXPECT_EQ(L5.Line, 2u);
  EXPECT_EQ(L5.Column, 2u);
  DecodedLoc L8 = SM.decode(SourceLoc(Id, 8)); // 't' of three.
  EXPECT_EQ(L8.Line, 3u);
  EXPECT_EQ(L8.Column, 1u);
}

TEST(SourceManager, InvalidLocationDecodesToUnknown) {
  SourceManager SM;
  DecodedLoc L = SM.decode(SourceLoc());
  EXPECT_EQ(L.FileName, "<unknown>");
  EXPECT_EQ(L.Line, 0u);
}

TEST(SourceManager, LineTextExtraction) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("a.esp", "first\nsecond line\nlast");
  EXPECT_EQ(SM.getLineText(SourceLoc(Id, 7)), "second line");
  EXPECT_EQ(SM.getLineText(SourceLoc(Id, 19)), "last"); // No newline at EOF.
}

TEST(SourceManager, MultipleBuffers) {
  SourceManager SM;
  uint32_t A = SM.addBuffer("a.esp", "aaa");
  uint32_t B = SM.addBuffer("b.esp", "bbb");
  EXPECT_NE(A, B);
  EXPECT_EQ(SM.getBufferName(A), "a.esp");
  EXPECT_EQ(SM.getBuffer(B), "bbb");
  EXPECT_EQ(SM.getNumBuffers(), 2u);
}

TEST(SourceManager, MissingFileReturnsSentinel) {
  SourceManager SM;
  EXPECT_EQ(SM.addFile("/nonexistent/path.esp"), UINT32_MAX);
}

TEST(Diagnostics, CountsAndRendering) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("d.esp", "x\ny\n");
  DiagnosticEngine Diags(SM);
  Diags.error(SourceLoc(Id, 2), "bad thing");
  Diags.warning(SourceLoc(Id, 0), "iffy thing");
  Diags.note(SourceLoc(Id, 0), "context");
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_EQ(Diags.getNumErrors(), 1u);
  EXPECT_EQ(Diags.getNumWarnings(), 1u);
  std::string All = Diags.renderAll();
  EXPECT_NE(All.find("d.esp:2:1: error: bad thing"), std::string::npos);
  EXPECT_NE(All.find("warning: iffy thing"), std::string::npos);
  EXPECT_NE(All.find("note: context"), std::string::npos);
  EXPECT_TRUE(Diags.containsMessage("bad"));
  EXPECT_FALSE(Diags.containsMessage("missing"));
  Diags.clear();
  EXPECT_FALSE(Diags.hasErrors());
}

TEST(StringExtras, Split) {
  std::vector<std::string_view> Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringExtras, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(StringExtras, Fnv1aIsStableAndSensitive) {
  uint64_t A = fnv1aHash("hello", 5);
  uint64_t B = fnv1aHash("hello", 5);
  uint64_t C = fnv1aHash("hellp", 5);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);
  EXPECT_NE(fnv1aHash("x", 1, 1), fnv1aHash("x", 1, 2)); // Seeded.
}

TEST(StringExtras, CountEffectiveLines) {
  EXPECT_EQ(countEffectiveLines(""), 0u);
  EXPECT_EQ(countEffectiveLines("code();\n"), 1u);
  EXPECT_EQ(countEffectiveLines("// only a comment\n"), 0u);
  EXPECT_EQ(countEffectiveLines("   \n\t\n"), 0u);
  EXPECT_EQ(countEffectiveLines("a(); // trailing comment\nb();\n"), 2u);
  EXPECT_EQ(countEffectiveLines("/* multi\nline\ncomment */\ncode();\n"),
            1u);
  EXPECT_EQ(countEffectiveLines("x(); /* inline */ y();\n"), 1u);
  EXPECT_EQ(countEffectiveLines("/* a */ code(); /* b\n still b */\n"), 1u);
}

} // namespace

//===--- test_lexer.cpp - Lexer unit tests ----------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Lexer.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace esp;

namespace {

std::vector<Token> lex(const std::string &Source, unsigned *NumErrors = nullptr) {
  static SourceManager SM;
  static DiagnosticEngine Diags(SM);
  Diags.clear();
  uint32_t FileId = SM.addBuffer("lex.esp", Source);
  Lexer L(SM, FileId, Diags);
  std::vector<Token> Tokens = L.lexAll();
  if (NumErrors)
    *NumErrors = Diags.getNumErrors();
  return Tokens;
}

std::vector<TokenKind> kinds(const std::string &Source) {
  std::vector<TokenKind> Out;
  for (const Token &T : lex(Source))
    Out.push_back(T.Kind);
  EXPECT_FALSE(Out.empty());
  Out.pop_back(); // Drop EOF.
  return Out;
}

TEST(Lexer, EmptyInputYieldsEOF) {
  std::vector<Token> Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_TRUE(Tokens[0].is(TokenKind::EndOfFile));
}

TEST(Lexer, Keywords) {
  auto K = kinds("type record union array of int bool channel interface "
                 "process const while if else alt case in out link unlink "
                 "cast assert true false");
  std::vector<TokenKind> Expected = {
      TokenKind::KwType,    TokenKind::KwRecord,    TokenKind::KwUnion,
      TokenKind::KwArray,   TokenKind::KwOf,        TokenKind::KwInt,
      TokenKind::KwBool,    TokenKind::KwChannel,   TokenKind::KwInterface,
      TokenKind::KwProcess, TokenKind::KwConst,     TokenKind::KwWhile,
      TokenKind::KwIf,      TokenKind::KwElse,      TokenKind::KwAlt,
      TokenKind::KwCase,    TokenKind::KwIn,        TokenKind::KwOut,
      TokenKind::KwLink,    TokenKind::KwUnlink,    TokenKind::KwCast,
      TokenKind::KwAssert,  TokenKind::KwTrue,      TokenKind::KwFalse};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, IdentifiersAreNotKeywords) {
  auto K = kinds("types inx outy process1 _of");
  for (TokenKind Kind : K)
    EXPECT_EQ(Kind, TokenKind::Identifier);
}

TEST(Lexer, IntLiterals) {
  std::vector<Token> Tokens = lex("0 42 1024 0x1F");
  ASSERT_EQ(Tokens.size(), 5u);
  EXPECT_EQ(Tokens[0].IntValue, 0);
  EXPECT_EQ(Tokens[1].IntValue, 42);
  EXPECT_EQ(Tokens[2].IntValue, 1024);
  EXPECT_EQ(Tokens[3].IntValue, 31);
}

TEST(Lexer, EspOperators) {
  auto K = kinds("|> -> $ # @ ... . || |>");
  std::vector<TokenKind> Expected = {
      TokenKind::PipeGreater, TokenKind::Arrow,    TokenKind::Dollar,
      TokenKind::Hash,        TokenKind::At,       TokenKind::Ellipsis,
      TokenKind::Dot,         TokenKind::PipePipe, TokenKind::PipeGreater};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, ComparisonAndArithmetic) {
  auto K = kinds("= == != < <= > >= + - * / % ! &&");
  std::vector<TokenKind> Expected = {
      TokenKind::Assign,  TokenKind::EqualEqual,   TokenKind::NotEqual,
      TokenKind::Less,    TokenKind::LessEqual,    TokenKind::Greater,
      TokenKind::GreaterEqual, TokenKind::Plus,    TokenKind::Minus,
      TokenKind::Star,    TokenKind::Slash,        TokenKind::Percent,
      TokenKind::Bang,    TokenKind::AmpAmp};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, LineCommentsAreSkipped) {
  auto K = kinds("in // everything here is ignored |> $\nout");
  std::vector<TokenKind> Expected = {TokenKind::KwIn, TokenKind::KwOut};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, BlockCommentsAreSkipped) {
  auto K = kinds("in /* multi\nline\ncomment */ out");
  std::vector<TokenKind> Expected = {TokenKind::KwIn, TokenKind::KwOut};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, UnterminatedBlockCommentIsError) {
  unsigned NumErrors = 0;
  lex("in /* never closed", &NumErrors);
  EXPECT_EQ(NumErrors, 1u);
}

TEST(Lexer, UnexpectedCharacterIsError) {
  unsigned NumErrors = 0;
  lex("a ? b", &NumErrors);
  EXPECT_EQ(NumErrors, 1u);
}

TEST(Lexer, MinusVersusArrow) {
  auto K = kinds("a - b -> c - > d");
  std::vector<TokenKind> Expected = {
      TokenKind::Identifier, TokenKind::Minus,   TokenKind::Identifier,
      TokenKind::Arrow,      TokenKind::Identifier, TokenKind::Minus,
      TokenKind::Greater,    TokenKind::Identifier};
  EXPECT_EQ(K, Expected);
}

TEST(Lexer, LocationsDecodeToLinesAndColumns) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  uint32_t FileId = SM.addBuffer("loc.esp", "process p {\n  $x = 1;\n}\n");
  Lexer L(SM, FileId, Diags);
  std::vector<Token> Tokens = L.lexAll();
  // Token 3 is '$' at line 2 column 3.
  DecodedLoc DL = SM.decode(Tokens[3].Loc);
  EXPECT_EQ(DL.Line, 2u);
  EXPECT_EQ(DL.Column, 3u);
  EXPECT_EQ(SM.getLineText(Tokens[3].Loc), "  $x = 1;");
}

} // namespace

//===--- test_printer.cpp - Pretty-printer and round-trip tests ----------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/PrettyPrinter.h"
#include "vmmc/EspFirmwareSource.h"
#include "TestHelpers.h"

using namespace esp;
using namespace esp::test;

namespace {

TEST(Printer, ExpressionsRenderCanonically) {
  auto C = compile(R"(
channel c: int
process p { $x = 1 + 2 * 3; out(c, x); }
process q { in(c, $y); }
)");
  ASSERT_TRUE(C);
  const DeclStmt *D =
      ast_cast<DeclStmt>(C->Prog->Processes[0]->Body->getBody()[0]);
  EXPECT_EQ(printExpr(D->getInit()), "(1 + (2 * 3))");
}

TEST(Printer, PatternsRenderCanonically) {
  auto C = compile(R"(
type sendT = record of { dest: int }
type userT = union of { send: sendT }
channel c: userT
process p { in(c, { send |> { $dest } }); }
process w { out(c, { send |> { 3 } }); }
)");
  ASSERT_TRUE(C);
  const AltStmt *A =
      ast_cast<AltStmt>(C->Prog->Processes[0]->Body->getBody()[0]);
  EXPECT_EQ(printPattern(A->getCases()[0].Action.Pat),
            "{ send |> { $dest } }");
}

TEST(Printer, ProgramContainsEveryDeclaration) {
  auto C = compile(R"(
const N = 3;
type rT = record of { a: int }
channel c: rT
interface I(out c) { Put( { $a } ) }
channel d: int
process consumer { in(c, { $a }); out(d, a + N); }
)");
  ASSERT_TRUE(C);
  std::string Out = printProgram(*C->Prog);
  EXPECT_NE(Out.find("const N = 3;"), std::string::npos) << Out;
  EXPECT_NE(Out.find("type rT = record of { a: int }"), std::string::npos);
  EXPECT_NE(Out.find("channel c: record of { a: int }"), std::string::npos);
  EXPECT_NE(Out.find("interface I(out c)"), std::string::npos);
  EXPECT_NE(Out.find("process consumer"), std::string::npos);
}

/// Round-trip property: parse → check → print → reparse → check → the
/// two programs lower to identical IR listings.
void expectRoundTrip(const std::string &Source) {
  auto C1 = compile(Source);
  ASSERT_TRUE(C1);
  std::string Printed = printProgram(*C1->Prog);
  auto C2 = compile(Printed);
  ASSERT_TRUE(C2) << "reparse failed; printed source was:\n" << Printed;
  EXPECT_EQ(C1->Module.dump(), C2->Module.dump())
      << "printed source was:\n"
      << Printed;
}

TEST(PrinterRoundTrip, Pipeline) {
  expectRoundTrip(R"(
channel c1: int
channel c2: int
process producer { $i = 0; while (i < 5) { out(c1, i); i = i + 1; } }
process add5 { while (true) { in(c1, $x); out(c2, x + 5); } }
process consumer { $n = 0; while (n < 5) { in(c2, $y); assert(y == n + 5); n = n + 1; } }
)");
}

TEST(PrinterRoundTrip, GuardedAltWithArrays) {
  expectRoundTrip(R"(
const SIZE = 4;
channel chan1: int
channel chan2: int
process fifo {
  $q: #array of int = #{ SIZE -> 0 };
  $hd = 0; $tl = 0; $cnt = 0;
  while (true) {
    alt {
      case( cnt < SIZE, in( chan1, $v)) { q[tl] = v; tl = (tl + 1) % SIZE; cnt = cnt + 1; }
      case( cnt > 0, out( chan2, q[hd])) { hd = (hd + 1) % SIZE; cnt = cnt - 1; }
    }
  }
}
process w { out(chan1, 1); in(chan2, $x); }
)");
}

TEST(PrinterRoundTrip, UnionsPatternsAndRefcounting) {
  expectRoundTrip(R"(
type dataT = array of int
type sendT = record of { dest: int, data: dataT }
type updT = record of { v: int, p: int }
type userT = union of { send: sendT, update: updT }
channel reqC: userT
channel ackC: int
process sender {
  in(reqC, { send |> { $dest, $data } });
  link(data);
  unlink(data);
  unlink(data);
  out(ackC, dest);
}
process updater {
  in(reqC, { update |> { $v, $p } });
  out(ackC, v + p);
}
process driver {
  $payload: dataT = { 4 -> 7 };
  out(reqC, { send |> { 5, payload } });
  unlink(payload);
  out(reqC, { update |> { 20, 30 } });
  in(ackC, $a1);
  in(ackC, $a2);
}
)");
}

TEST(PrinterRoundTrip, ExternalInterfacesAndSelfId) {
  expectRoundTrip(R"(
type reqT = record of { a: int, b: int }
channel reqC: reqT
channel resC: int
interface Req(out reqC) { Post( { $a, $b } ) }
interface Res(in resC) { Done( $v ) }
channel ptReqC: record of { ret: int, v: int }
channel ptReplyC: record of { ret: int, v: int }
process adder {
  while (true) {
    in(reqC, { $a, $b });
    out(ptReqC, { @, a });
    in(ptReplyC, { @, $t });
    out(resC, t + b);
  }
}
process table {
  while (true) {
    in(ptReqC, { $ret, $v });
    out(ptReplyC, { ret, v * 2 });
  }
}
)");
}

TEST(PrinterRoundTrip, CastsAndMutables) {
  expectRoundTrip(R"(
channel done: int
process p {
  $m: #array of int = #{ 4 -> 1 };
  m[0] = 10;
  $frozen = cast(m);
  if (frozen[0] == 10) { out(done, 1); } else { out(done, 0); }
  unlink(m);
  unlink(frozen);
}
process q { in(done, $x); }
)");
}

TEST(PrinterRoundTrip, TheVmmcFirmwareItself) {
  // The strongest round-trip case we have: the whole case-study
  // firmware survives print + reparse with identical IR.
  expectRoundTrip(esp::vmmc::getVmmcEspSource());
}

} // namespace

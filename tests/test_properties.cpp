//===--- test_properties.cpp - Cross-cutting property tests --------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Property-style checks across the whole system: determinism of the
// runtime and checker, agreement between the interpreter, the model
// checker's semantic mode, and the generated C, and invariants of the
// reference-counting discipline under parameter sweeps.
//
//===----------------------------------------------------------------------===//

#include "mc/ModelChecker.h"
#include "TestHelpers.h"

using namespace esp;
using namespace esp::test;

namespace {

/// Builds an N-stage pipeline with a refcounted payload flowing through
/// every stage; checks every stage saw it and nothing leaked.
std::string makePipeline(unsigned Stages, unsigned Messages) {
  std::string Source = "type dataT = array of int\n"
                       "type msgT = record of { hops: int, data: dataT }\n";
  for (unsigned I = 0; I <= Stages; ++I)
    Source += "channel c" + std::to_string(I) + ": msgT\n";
  Source += "process source {\n  $i = 0;\n  while (i < " +
            std::to_string(Messages) + ") {\n"
            "    $d: dataT = { 2 -> i };\n"
            "    out(c0, { 0, d });\n"
            "    unlink(d);\n"
            "    i = i + 1;\n  }\n}\n";
  for (unsigned I = 0; I != Stages; ++I) {
    Source += "process stage" + std::to_string(I) + " {\n";
    Source += "  while (true) {\n";
    Source += "    in(c" + std::to_string(I) + ", { $hops, $d });\n";
    Source += "    out(c" + std::to_string(I + 1) + ", { hops + 1, d });\n";
    Source += "    unlink(d);\n  }\n}\n";
  }
  Source += "process sink {\n  $n = 0;\n  while (n < " +
            std::to_string(Messages) + ") {\n"
            "    in(c" + std::to_string(Stages) + ", { $hops, $d });\n"
            "    assert(hops == " + std::to_string(Stages) + ");\n"
            "    assert(d[0] == n);\n"
            "    unlink(d);\n"
            "    n = n + 1;\n  }\n}\n";
  return Source;
}

struct PipelineParam {
  unsigned Stages;
  unsigned Messages;
};

class PipelineSweep : public ::testing::TestWithParam<PipelineParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sizes, PipelineSweep,
    ::testing::Values(PipelineParam{1, 1}, PipelineParam{1, 8},
                      PipelineParam{2, 4}, PipelineParam{3, 4},
                      PipelineParam{5, 2}, PipelineParam{8, 3}),
    [](const ::testing::TestParamInfo<PipelineParam> &Info) {
      std::string Name = "s";
      Name += std::to_string(Info.param.Stages);
      Name += "m";
      Name += std::to_string(Info.param.Messages);
      return Name;
    });

TEST_P(PipelineSweep, ExecutesWithoutLeaks) {
  auto C = compile(makePipeline(GetParam().Stages, GetParam().Messages));
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  Machine::StepResult R = M.run(1'000'000);
  ASSERT_FALSE(M.error()) << M.error().Message;
  // Stages loop forever; source and sink must be done, heap empty.
  EXPECT_EQ(R, Machine::StepResult::Quiescent);
  EXPECT_EQ(M.heap().getLiveCount(), 0u);
  EXPECT_EQ(M.countLeakedObjects(), 0u);
}

TEST_P(PipelineSweep, SharingAndDeepCopyModesAgree) {
  auto C = compile(makePipeline(GetParam().Stages, GetParam().Messages));
  ASSERT_TRUE(C);
  for (bool DeepCopy : {false, true}) {
    MachineOptions Options;
    Options.DeepCopyTransfers = DeepCopy;
    Machine M(C->Module, Options);
    M.start();
    M.run(1'000'000);
    ASSERT_FALSE(M.error()) << "deep=" << DeepCopy << ": "
                            << M.error().Message;
    EXPECT_EQ(M.heap().getLiveCount(), 0u) << "deep=" << DeepCopy;
  }
}

TEST_P(PipelineSweep, ModelCheckerVerifiesClean) {
  PipelineParam Param = GetParam();
  if (Param.Stages * Param.Messages > 12)
    GTEST_SKIP() << "state space too large for a unit test";
  auto C = compile(makePipeline(Param.Stages, Param.Messages));
  ASSERT_TRUE(C);
  McOptions Options;
  Options.CheckDeadlock = false; // Stages loop forever.
  Options.MaxStates = 500'000;
  McResult R = checkModel(C->Module, Options);
  EXPECT_NE(R.Verdict, McVerdict::Violation) << R.report();
}

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(Determinism, ExecutionStatsAreReproducible) {
  auto C = compile(makePipeline(3, 5));
  ASSERT_TRUE(C);
  uint64_t FirstInstructions = 0;
  uint64_t FirstRendezvous = 0;
  for (int Round = 0; Round != 3; ++Round) {
    Machine M(C->Module, MachineOptions());
    M.start();
    M.run(1'000'000);
    ASSERT_FALSE(M.error());
    if (Round == 0) {
      FirstInstructions = M.stats().Instructions;
      FirstRendezvous = M.stats().Rendezvous;
    } else {
      EXPECT_EQ(M.stats().Instructions, FirstInstructions);
      EXPECT_EQ(M.stats().Rendezvous, FirstRendezvous);
    }
  }
}

TEST(Determinism, StateSerializationIsCanonical) {
  auto C = compile(R"(
type dataT = array of int
channel c: dataT
channel d: int
process p {
  $a: dataT = { 3 -> 7 };
  out(c, a);
  unlink(a);
}
process q { in(c, $x); out(d, x[0]); unlink(x); }
process r { in(d, $v); }
)");
  ASSERT_TRUE(C);
  MachineOptions Options;
  Options.DeepCopyTransfers = true;
  Machine M1(C->Module, Options);
  Machine M2(C->Module, Options);
  M1.start();
  M2.start();
  EXPECT_EQ(M1.serializeState(), M2.serializeState());
  std::vector<Move> Moves1 = M1.enumerateMoves();
  std::vector<Move> Moves2 = M2.enumerateMoves();
  ASSERT_EQ(Moves1.size(), Moves2.size());
  ASSERT_FALSE(Moves1.empty());
  M1.applyMove(Moves1[0]);
  M2.applyMove(Moves2[0]);
  EXPECT_EQ(M1.serializeState(), M2.serializeState());
}

TEST(Determinism, SnapshotRestoreRoundTrips) {
  auto C = compile(makePipeline(2, 3));
  ASSERT_TRUE(C);
  MachineOptions Options;
  Options.DeepCopyTransfers = true;
  Machine M(C->Module, Options);
  M.start();
  std::vector<Move> Moves = M.enumerateMoves();
  ASSERT_FALSE(Moves.empty());
  Machine::Snapshot Snap = M.snapshot();
  std::string Before = M.serializeState();
  M.applyMove(Moves[0]);
  EXPECT_NE(M.serializeState(), Before);
  M.restore(Snap);
  EXPECT_EQ(M.serializeState(), Before);
  // The restored machine can take the same move again.
  std::vector<Move> Again = M.enumerateMoves();
  EXPECT_EQ(Again.size(), Moves.size());
}

TEST(Determinism, McStateCountsStableAcrossRuns) {
  auto C = compile(makePipeline(2, 2));
  ASSERT_TRUE(C);
  McOptions Options;
  Options.CheckDeadlock = false;
  McResult A = checkModel(C->Module, Options);
  McResult B = checkModel(C->Module, Options);
  EXPECT_EQ(A.StatesStored, B.StatesStored);
  EXPECT_EQ(A.Transitions, B.Transitions);
}

//===----------------------------------------------------------------------===//
// Refcount discipline properties
//===----------------------------------------------------------------------===//

class FanoutSweep : public ::testing::TestWithParam<unsigned> {};

INSTANTIATE_TEST_SUITE_P(Readers, FanoutSweep,
                         ::testing::Values(2u, 3u, 5u));

TEST_P(FanoutSweep, OneObjectSharedWithNReadersFreesExactlyOnce) {
  // One payload broadcast to N readers over N channels (refcount
  // transfer, §6.1): every reader unlinks its reference; the writer
  // unlinks its own; the object must die exactly once.
  unsigned N = GetParam();
  std::string Source = "type dataT = array of int\n";
  for (unsigned I = 0; I != N; ++I)
    Source += "channel c" + std::to_string(I) + ": dataT\n";
  Source += "process writer {\n  $d: dataT = { 2 -> 9 };\n";
  for (unsigned I = 0; I != N; ++I)
    Source += "  out(c" + std::to_string(I) + ", d);\n";
  Source += "  unlink(d);\n}\n";
  for (unsigned I = 0; I != N; ++I)
    Source += "process r" + std::to_string(I) + " { in(c" +
              std::to_string(I) + ", $x); assert(x[1] == 9); unlink(x); }\n";
  auto C = compile(Source);
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(100'000), Machine::StepResult::Halted)
      << M.error().Message;
  EXPECT_EQ(M.heap().getLiveCount(), 0u);
  // Sharing mode: exactly one allocation regardless of reader count.
  EXPECT_EQ(M.heap().getTotalAllocations(), 1u);
}

TEST(RefcountProperties, ForgettingOneUnlinkLeaksExactlyOneObject) {
  auto C = compile(R"(
type dataT = array of int
channel c: dataT
channel d: dataT
process w {
  $a: dataT = { 2 -> 1 };
  $b: dataT = { 2 -> 2 };
  out(c, a); out(d, b);
  unlink(a); unlink(b);
}
process r1 { in(c, $x); unlink(x); }
process r2 { in(d, $y); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(100'000), Machine::StepResult::Halted)
      << M.error().Message;
  EXPECT_EQ(M.heap().getLiveCount(), 1u);
  EXPECT_EQ(M.countLeakedObjects(), 1u);
}

} // namespace

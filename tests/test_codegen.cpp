//===--- test_codegen.cpp - C and Promela backend tests ---------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The C backend tests compile the generated code with the system C
// compiler and execute it, validating the full espc pipeline end to end.
//
//===----------------------------------------------------------------------===//

#include "codegen/CCodeGen.h"
#include "codegen/PromelaGen.h"
#include "TestHelpers.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace esp;
using namespace esp::test;

namespace {

struct RunResult {
  int ExitCode = -1;
  std::string Output;
};

/// Writes the generated C and a driver into a temp dir, compiles with the
/// system cc, runs, and captures stdout.
RunResult compileAndRunC(const std::string &Generated,
                         const std::string &Driver) {
  char Template[] = "/tmp/esp_cg_XXXXXX";
  char *Dir = mkdtemp(Template);
  if (!Dir) {
    ADD_FAILURE() << "mkdtemp failed";
    return {};
  }
  std::string Base(Dir);
  {
    std::ofstream Gen(Base + "/gen.c");
    Gen << Generated;
    std::ofstream Drv(Base + "/driver.c");
    Drv << Driver;
  }
  std::string Compile = "cc -std=c99 -O1 -o " + Base + "/prog " + Base +
                        "/gen.c " + Base + "/driver.c 2> " + Base +
                        "/cc.log";
  if (std::system(Compile.c_str()) != 0) {
    std::ifstream Log(Base + "/cc.log");
    std::ostringstream LogText;
    LogText << Log.rdbuf();
    ADD_FAILURE() << "cc failed:\n" << LogText.str() << "\n--- generated ---\n"
                  << Generated;
    return {};
  }
  std::string Run = Base + "/prog > " + Base + "/out.log 2>&1";
  int Status = std::system(Run.c_str());
  RunResult Result;
  Result.ExitCode = WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
  std::ifstream Out(Base + "/out.log");
  std::ostringstream OutText;
  OutText << Out.rdbuf();
  Result.Output = OutText.str();
  std::string Cleanup = "rm -rf " + Base;
  (void)std::system(Cleanup.c_str());
  return Result;
}

const char *ClosedDriver = R"(
#include <stdio.h>
extern void esp_start(void);
extern int esp_main_loop(long max_steps);
extern long long esp_stat_live(void);
extern unsigned long long esp_stat_rendezvous(void);
int main(void) {
  esp_start();
  int r = esp_main_loop(1000000);
  printf("result=%d live=%lld rendezvous=%llu\n", r, esp_stat_live(),
         esp_stat_rendezvous());
  return r == 2 ? 0 : 1; /* 2 = ESP_RES_HALTED */
}
)";

std::string genFor(const std::string &Source, bool Optimize = true) {
  OptOptions Options = Optimize ? OptOptions::all() : OptOptions::none();
  auto C = compile(Source, &Options);
  if (!C)
    return {};
  return generateC(C->Module);
}

TEST(CCodeGen, PipelineCompilesAndHalts) {
  std::string Gen = genFor(R"(
channel c1: int
channel c2: int
process producer {
  $i = 0;
  while (i < 5) { out(c1, i); i = i + 1; }
}
process add5 {
  $n = 0;
  while (n < 5) { in(c1, $x); out(c2, x + 5); n = n + 1; }
}
process consumer {
  $n = 0;
  while (n < 5) { in(c2, $y); assert(y == n + 5); n = n + 1; }
}
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("live=0"), std::string::npos) << R.Output;
  EXPECT_NE(R.Output.find("rendezvous=10"), std::string::npos) << R.Output;
}

TEST(CCodeGen, FailedAssertionExitsWithPanic) {
  std::string Gen = genFor(R"(
channel c: int
process a { out(c, 3); }
process b { in(c, $x); assert(x == 4); }
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 2) << R.Output; // esp_panic exits with 2.
}

TEST(CCodeGen, UnionDispatchAndRefcounting) {
  std::string Gen = genFor(R"(
type dataT = array of int
type sendT = record of { dest: int, data: dataT }
type updT = record of { vAddr: int, pAddr: int }
type userT = union of { send: sendT, update: updT }
channel reqC: userT
channel ackC: int
process sender {
  in(reqC, { send |> { $dest, $data } });
  assert(data[0] == 7);
  unlink(data);
  out(ackC, dest);
}
process updater {
  in(reqC, { update |> { $v, $p } });
  out(ackC, v + p);
}
process driver {
  $payload: dataT = { 4 -> 7 };
  out(reqC, { send |> { 5, payload } });
  unlink(payload);
  out(reqC, { update |> { 20, 30 } });
  in(ackC, $a1);
  in(ackC, $a2);
  assert(a1 + a2 == 55);
}
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("live=0"), std::string::npos) << R.Output;
}

TEST(CCodeGen, GuardedAltFifo) {
  std::string Gen = genFor(R"(
const SIZE = 4;
channel chan1: int
channel chan2: int
channel stop: int
process fifo {
  $q: #array of int = #{ SIZE -> 0 };
  $hd = 0; $tl = 0; $cnt = 0; $run = true;
  while (run) {
    alt {
      case( cnt < SIZE, in( chan1, $v)) { q[tl] = v; tl = (tl + 1) % SIZE; cnt = cnt + 1; }
      case( cnt > 0, out( chan2, q[hd])) { hd = (hd + 1) % SIZE; cnt = cnt - 1; }
      case( in( stop, $s)) { run = false; }
    }
  }
  unlink(q);
}
process producer {
  $i = 0;
  while (i < 20) { out(chan1, i * 3); i = i + 1; }
}
process consumer {
  $i = 0;
  while (i < 20) { in(chan2, $v); assert(v == i * 3); i = i + 1; }
  out(stop, 1);
}
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("live=0"), std::string::npos) << R.Output;
}

TEST(CCodeGen, ExternalInterfacesRoundTrip) {
  // An external writer feeds requests; an external reader consumes
  // results: the paper's IsReady/per-case C function protocol (§4.5).
  std::string Gen = genFor(R"(
type reqT = record of { a: int, b: int }
channel reqC: reqT
channel resC: int
interface Req(out reqC) { Post( { $a, $b } ) }
interface Res(in resC) { Done( $v ) }
process adder {
  while (true) {
    in(reqC, { $a, $b });
    out(resC, a + b);
  }
}
)");
  ASSERT_FALSE(Gen.empty());
  const char *Driver = R"(
#include <stdio.h>
extern void esp_start(void);
extern int esp_main_loop(long max_steps);
extern long long esp_stat_live(void);
static int posted = 0;
static long long results[4];
static int nresults = 0;
int ReqIsReady(void) { return posted < 4 ? 1 : 0; }
void ReqPost(long long *a, long long *b) {
  *a = posted; *b = 10 * posted; posted++;
}
int ResIsReady(void) { return 1; }
void ResDone(long long v) { results[nresults++] = v; }
int main(void) {
  esp_start();
  int r = esp_main_loop(100000);
  if (r != 1) { printf("expected quiescent, got %d\n", r); return 1; }
  if (nresults != 4) { printf("got %d results\n", nresults); return 1; }
  for (int i = 0; i < 4; i++)
    if (results[i] != 11LL * i) { printf("bad result %d\n", i); return 1; }
  printf("ok live=%lld\n", esp_stat_live());
  return 0;
}
)";
  RunResult R = compileAndRunC(Gen, Driver);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("ok live=0"), std::string::npos) << R.Output;
}

TEST(CCodeGen, UnoptimizedModuleAlsoRuns) {
  std::string Gen = genFor(R"(
channel c1: int
channel c2: int
process a { $i = 0; while (i < 3) { out(c1, i); i = i + 1; } }
process b { $i = 0; while (i < 3) { in(c1, $x); out(c2, x); i = i + 1; } }
process d { $i = 0; while (i < 3) { in(c2, $y); assert(y == i); i = i + 1; } }
)",
                           /*Optimize=*/false);
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
}

TEST(CCodeGen, HeaderDeclaresEntryPoints) {
  auto C = compile("channel c: int\nprocess a { out(c, 1); }\n"
                   "process b { in(c, $x); }");
  ASSERT_TRUE(C);
  std::string Header = generateCHeader(C->Module);
  EXPECT_NE(Header.find("esp_start"), std::string::npos);
  EXPECT_NE(Header.find("esp_main_loop"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Promela backend (structural tests; SPIN is not bundled — src/mc is the
// native verifier).
//===----------------------------------------------------------------------===//

TEST(PromelaGen, EmitsPoolsChannelsAndProcesses) {
  auto C = compile(R"(
type dataT = array of int
type msgT = record of { dest: int, data: dataT }
channel c: msgT
process sender {
  $d: dataT = { 4 -> 1 };
  out(c, { 3, d });
  unlink(d);
}
process receiver {
  in(c, { $dest, $data });
  unlink(data);
}
)");
  ASSERT_TRUE(C);
  std::string Spec = generatePromela(*C->Prog);
  // Pools with refcount arrays for each aggregate type.
  EXPECT_NE(Spec.find("dataT_pool"), std::string::npos) << Spec;
  EXPECT_NE(Spec.find("dataT_rc"), std::string::npos);
  // Rendezvous channel, flattened to two int fields.
  EXPECT_NE(Spec.find("chan c[NINST] = [0] of { int, int }"),
            std::string::npos)
      << Spec;
  // Refcount macros with liveness assertions.
  EXPECT_NE(Spec.find("#define ESP_LINK"), std::string::npos);
  EXPECT_NE(Spec.find("assert(rc[id] > 0)"), std::string::npos);
  // Both processes and the init block that instantiates NINST copies.
  EXPECT_NE(Spec.find("proctype sender"), std::string::npos);
  EXPECT_NE(Spec.find("proctype receiver"), std::string::npos);
  EXPECT_NE(Spec.find("run sender(i)"), std::string::npos);
}

TEST(PromelaGen, UnionDispatchUsesTagEval) {
  auto C = compile(R"(
type uT = union of { a: int, b: int }
channel c: uT
process p { out(c, { a |> 5 }); }
process qa { in(c, { a |> $x }); }
process qb { in(c, { b |> $y }); }
)");
  ASSERT_TRUE(C);
  std::string Spec = generatePromela(*C->Prog);
  // Receives match on the arm tag with eval().
  EXPECT_NE(Spec.find("eval(0) /* arm a */"), std::string::npos) << Spec;
  EXPECT_NE(Spec.find("eval(1) /* arm b */"), std::string::npos);
}

TEST(PromelaGen, ReplyDispatchUsesProcessIdEval) {
  auto C = compile(R"(
channel reply: record of { ret: int, v: int }
process a { in(reply, { @, $v }); }
process b { out(reply, { 0, 7 }); }
)");
  ASSERT_TRUE(C);
  std::string Spec = generatePromela(*C->Prog);
  EXPECT_NE(Spec.find("reply[_inst]?eval(0)"), std::string::npos) << Spec;
}

TEST(PromelaGen, MultipleInstances) {
  auto C = compile("channel c: int\nprocess a { out(c, 1); }\n"
                   "process b { in(c, $x); }");
  ASSERT_TRUE(C);
  PromelaGenOptions Options;
  Options.Instances = 3;
  std::string Spec = generatePromela(*C->Prog, Options);
  EXPECT_NE(Spec.find("#define NINST 3"), std::string::npos);
}

} // namespace

//===----------------------------------------------------------------------===//
// Safety-check builds (espc --safety)
//===----------------------------------------------------------------------===//

namespace {

std::string genSafety(const std::string &Source) {
  OptOptions Options = OptOptions::all();
  auto C = esp::test::compile(Source, &Options);
  if (!C)
    return {};
  CCodeGenOptions CGOptions;
  CGOptions.EmitSafetyChecks = true;
  return generateC(C->Module, CGOptions);
}

TEST(CCodeGenSafety, CleanProgramStillRuns) {
  std::string Gen = genSafety(R"(
type dataT = array of int
type msgT = record of { dest: int, data: dataT }
channel c: msgT
channel done: int
process sender {
  $data: dataT = { 8 -> 3 };
  out(c, { 1, data });
  unlink(data);
  out(done, 1);
}
process receiver {
  in(c, { $dest, $d });
  assert(d[7] == 3);
  unlink(d);
}
process j { in(done, $x); }
)");
  ASSERT_FALSE(Gen.empty());
  EXPECT_NE(Gen.find("#define ESP_SAFETY 1"), std::string::npos);
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
}

TEST(CCodeGenSafety, UseAfterFreeTrapsInGeneratedC) {
  std::string Gen = genSafety(R"(
channel done: int
process p {
  $a: #array of int = #{ 4 -> 0 };
  unlink(a);
  a[0] = 1;
  out(done, 1);
}
process q { in(done, $x); }
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 2) << R.Output; // esp_panic.
}

TEST(CCodeGenSafety, IndexOutOfBoundsTraps) {
  std::string Gen = genSafety(R"(
channel done: int
process p {
  $a: #array of int = #{ 4 -> 0 };
  $i = 9;
  a[i] = 1;
  unlink(a);
  out(done, 1);
}
process q { in(done, $x); }
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
}

TEST(CCodeGenSafety, InvalidUnionArmTraps) {
  std::string Gen = genSafety(R"(
type uT = union of { a: int, b: int }
channel c: uT
channel done: int
process p { out(c, { a |> 5 }); }
process q { in(c, $u); $v = u.b; unlink(u); out(done, v); }
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 2) << R.Output;
}

TEST(CCodeGenSafety, WithoutChecksNoGuardsEmitted) {
  OptOptions Options = OptOptions::all();
  auto C = esp::test::compile(
      "channel c: int\nprocess a { out(c, 1); }\nprocess b { in(c, $x); }",
      &Options);
  ASSERT_TRUE(C);
  std::string Gen = generateC(C->Module);
  EXPECT_NE(Gen.find("#define ESP_SAFETY 0"), std::string::npos);
}

TEST(CCodeGen, CastDeepCopiesInGeneratedC) {
  std::string Gen = genFor(R"(
channel done: int
process p {
  $m: #array of int = #{ 4 -> 1 };
  m[0] = 10;
  $frozen = cast(m);
  m[0] = 99;
  assert(frozen[0] == 10);
  unlink(m);
  unlink(frozen);
  out(done, 1);
}
process q { in(done, $x); }
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("live=0"), std::string::npos) << R.Output;
}

TEST(CCodeGen, ReplyDispatchByProcessIdInGeneratedC) {
  std::string Gen = genFor(R"(
channel reqC: record of { ret: int, v: int }
channel replyC: record of { ret: int, v: int }
process clientA {
  out(reqC, { @, 10 });
  in(replyC, { @, $r });
  assert(r == 20);
}
process clientB {
  out(reqC, { @, 100 });
  in(replyC, { @, $r });
  assert(r == 200);
}
process server {
  $n = 0;
  while (n < 2) {
    in(reqC, { $who, $v });
    out(replyC, { who, v * 2 });
    n = n + 1;
  }
}
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
}

TEST(CCodeGen, FifoStressManyMessages) {
  std::string Gen = genFor(R"(
const SIZE = 4;
channel chan1: int
channel chan2: int
channel stop: int
process fifo {
  $q: #array of int = #{ SIZE -> 0 };
  $hd = 0; $tl = 0; $cnt = 0; $run = true;
  while (run) {
    alt {
      case( cnt < SIZE, in( chan1, $v)) { q[tl] = v; tl = (tl + 1) % SIZE; cnt = cnt + 1; }
      case( cnt > 0, out( chan2, q[hd])) { hd = (hd + 1) % SIZE; cnt = cnt - 1; }
      case( in( stop, $s)) { run = false; }
    }
  }
  unlink(q);
}
process producer {
  $i = 0;
  while (i < 500) { out(chan1, i * 7 % 1000); i = i + 1; }
}
process consumer {
  $i = 0;
  while (i < 500) { in(chan2, $v); assert(v == i * 7 % 1000); i = i + 1; }
  out(stop, 1);
}
)");
  ASSERT_FALSE(Gen.empty());
  RunResult R = compileAndRunC(Gen, ClosedDriver);
  EXPECT_EQ(R.ExitCode, 0) << R.Output;
  EXPECT_NE(R.Output.find("live=0"), std::string::npos) << R.Output;
}

} // namespace

//===--- test_heap.cpp - Refcounted heap unit tests ----------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include <gtest/gtest.h>

using namespace esp;

namespace {

class HeapTest : public ::testing::Test {
protected:
  TypeContext Ctx;
  const Type *arrayType() { return Ctx.getArrayType(Ctx.getIntType(), false); }
  const Type *recordType() {
    return Ctx.getRecordType({{"data", arrayType()}}, false);
  }
};

TEST_F(HeapTest, AllocateSetsRefcountToOne) {
  Heap H;
  std::optional<Value> V = H.allocate(arrayType(), 4);
  ASSERT_TRUE(V);
  const HeapObject *Obj = H.deref(*V);
  ASSERT_TRUE(Obj);
  EXPECT_EQ(Obj->RefCount, 1u);
  EXPECT_EQ(Obj->Elems.size(), 4u);
  EXPECT_EQ(H.getLiveCount(), 1u);
}

TEST_F(HeapTest, LinkUnlinkRoundTrip) {
  Heap H;
  Value V = *H.allocate(arrayType(), 1);
  EXPECT_EQ(H.link(V), HeapStatus::OK);
  EXPECT_EQ(H.deref(V)->RefCount, 2u);
  EXPECT_EQ(H.unlink(V), HeapStatus::OK);
  EXPECT_TRUE(H.isLive(V));
  EXPECT_EQ(H.unlink(V), HeapStatus::OK);
  EXPECT_FALSE(H.isLive(V));
  EXPECT_EQ(H.getLiveCount(), 0u);
}

TEST_F(HeapTest, OperationsOnDeadObjectFail) {
  Heap H;
  Value V = *H.allocate(arrayType(), 1);
  EXPECT_EQ(H.unlink(V), HeapStatus::OK);
  EXPECT_EQ(H.link(V), HeapStatus::DeadObject);
  EXPECT_EQ(H.unlink(V), HeapStatus::DeadObject);
  EXPECT_EQ(H.deref(V), nullptr);
}

TEST_F(HeapTest, GenerationsDetectUseAfterReuse) {
  // Freed slots are recycled (the paper reclaims objectIds); stale
  // references must still be detected.
  Heap H(/*MaxObjects=*/4, /*ReuseIds=*/true);
  Value Old = *H.allocate(arrayType(), 1);
  EXPECT_EQ(H.unlink(Old), HeapStatus::OK);
  Value Fresh = *H.allocate(arrayType(), 1);
  EXPECT_EQ(Fresh.Ref, Old.Ref); // Slot was reused...
  EXPECT_EQ(H.deref(Old), nullptr); // ...but the stale ref is dead.
  EXPECT_NE(H.deref(Fresh), nullptr);
}

TEST_F(HeapTest, BoundedTableExhausts) {
  Heap H(/*MaxObjects=*/3, /*ReuseIds=*/true);
  Value A = *H.allocate(arrayType(), 1);
  Value B = *H.allocate(arrayType(), 1);
  Value C = *H.allocate(arrayType(), 1);
  (void)A;
  (void)B;
  EXPECT_FALSE(H.allocate(arrayType(), 1)); // Leak indicator (§5.2).
  // Freeing one slot makes allocation possible again.
  EXPECT_EQ(H.unlink(C), HeapStatus::OK);
  EXPECT_TRUE(H.allocate(arrayType(), 1));
}

TEST_F(HeapTest, RecursiveUnlinkFreesChildren) {
  Heap H;
  Value Child = *H.allocate(arrayType(), 2);
  Value Parent = *H.allocate(recordType(), 1);
  H.deref(Parent)->Elems[0] = Child; // Construction edge owns the child.
  EXPECT_EQ(H.unlink(Parent), HeapStatus::OK);
  EXPECT_FALSE(H.isLive(Parent));
  EXPECT_FALSE(H.isLive(Child));
  EXPECT_EQ(H.getLiveCount(), 0u);
}

TEST_F(HeapTest, SharedChildSurvivesOneParent) {
  Heap H;
  Value Child = *H.allocate(arrayType(), 2);
  EXPECT_EQ(H.link(Child), HeapStatus::OK); // Second reference.
  Value P1 = *H.allocate(recordType(), 1);
  Value P2 = *H.allocate(recordType(), 1);
  H.deref(P1)->Elems[0] = Child;
  H.deref(P2)->Elems[0] = Child;
  EXPECT_EQ(H.unlink(P1), HeapStatus::OK);
  EXPECT_TRUE(H.isLive(Child));
  EXPECT_EQ(H.unlink(P2), HeapStatus::OK);
  EXPECT_FALSE(H.isLive(Child));
}

TEST_F(HeapTest, DeepChainUnlinkIsIterative) {
  // A long parent chain must not blow the native stack.
  Heap H;
  Value Leaf = *H.allocate(arrayType(), 1);
  Value Current = Leaf;
  for (int I = 0; I != 100000; ++I) {
    Value Parent = *H.allocate(recordType(), 1);
    H.deref(Parent)->Elems[0] = Current;
    Current = Parent;
  }
  EXPECT_EQ(H.unlink(Current), HeapStatus::OK);
  EXPECT_EQ(H.getLiveCount(), 0u);
}

TEST_F(HeapTest, StatisticsTrackHighWater) {
  Heap H;
  Value A = *H.allocate(arrayType(), 1);
  Value B = *H.allocate(arrayType(), 1);
  EXPECT_EQ(H.unlink(A), HeapStatus::OK);
  Value C = *H.allocate(arrayType(), 1);
  (void)B;
  (void)C;
  EXPECT_EQ(H.getTotalAllocations(), 3u);
  EXPECT_EQ(H.getHighWater(), 2u);
  EXPECT_EQ(H.getLiveCount(), 2u);
}

TEST_F(HeapTest, ScalarValuesNeverDeref) {
  Heap H;
  EXPECT_EQ(H.deref(Value::makeInt(7)), nullptr);
  EXPECT_EQ(H.deref(Value::makeBool(true)), nullptr);
  EXPECT_EQ(H.deref(Value()), nullptr);
}

TEST_F(HeapTest, ValueEquality) {
  Heap H;
  EXPECT_EQ(Value::makeInt(3), Value::makeInt(3));
  EXPECT_FALSE(Value::makeInt(3) == Value::makeInt(4));
  EXPECT_FALSE(Value::makeInt(1) == Value::makeBool(true));
  Value A = *H.allocate(arrayType(), 1);
  Value B = *H.allocate(arrayType(), 1);
  EXPECT_EQ(A, A);
  EXPECT_FALSE(A == B);
}

TEST_F(HeapTest, CopyableForSnapshots) {
  Heap H;
  Value V = *H.allocate(arrayType(), 1);
  H.deref(V)->Elems[0] = Value::makeInt(42);
  Heap Copy = H; // The model checker snapshots machines this way.
  EXPECT_EQ(H.unlink(V), HeapStatus::OK);
  EXPECT_FALSE(H.isLive(V));
  EXPECT_TRUE(Copy.isLive(V));
  EXPECT_EQ(Copy.deref(V)->Elems[0].Scalar, 42);
}

TEST_F(HeapTest, FreeListReusesSlotsInLifoOrder) {
  Heap H;
  Value A = *H.allocate(arrayType(), 2);
  Value B = *H.allocate(arrayType(), 2);
  EXPECT_EQ(H.unlink(A), HeapStatus::OK);
  EXPECT_EQ(H.unlink(B), HeapStatus::OK);
  // B freed last, so it is reused first; no table growth.
  Value C = *H.allocate(arrayType(), 3);
  Value D = *H.allocate(arrayType(), 3);
  EXPECT_EQ(C.Ref, B.Ref);
  EXPECT_EQ(D.Ref, A.Ref);
  EXPECT_EQ(H.objects().size(), 2u);
  EXPECT_EQ(H.getTotalAllocations(), 4u);
  EXPECT_EQ(H.getLiveCount(), 2u);
  EXPECT_EQ(H.deref(C)->Elems.size(), 3u);
}

TEST_F(HeapTest, GenerationBumpDetectsUseAfterFreeAcrossReuse) {
  Heap H;
  Value Stale = *H.allocate(recordType(), 1);
  EXPECT_EQ(H.unlink(Stale), HeapStatus::OK);
  EXPECT_EQ(H.deref(Stale), nullptr) << "freed slot must not deref";
  // Reuse the slot: the stale reference's generation no longer matches,
  // so the use-after-free is still caught.
  Value Fresh = *H.allocate(recordType(), 1);
  ASSERT_EQ(Fresh.Ref, Stale.Ref);
  EXPECT_NE(Fresh.Gen, Stale.Gen);
  EXPECT_EQ(H.deref(Stale), nullptr);
  EXPECT_NE(H.deref(Fresh), nullptr);
  EXPECT_EQ(H.link(Stale), HeapStatus::DeadObject);
  EXPECT_EQ(H.unlink(Stale), HeapStatus::DeadObject);
}

TEST_F(HeapTest, GenerationParityTracksLiveness) {
  Heap H;
  H.setFullChecks(true); // Verification mode: parity invariant asserted.
  Value V = *H.allocate(arrayType(), 1);
  EXPECT_EQ(H.deref(V)->Gen & 1, 0u) << "live objects have even generations";
  uint32_t LiveGen = V.Gen;
  EXPECT_EQ(H.unlink(V), HeapStatus::OK);
  EXPECT_EQ(H.deref(V), nullptr);
  Value Reused = *H.allocate(arrayType(), 1);
  EXPECT_EQ(Reused.Ref, V.Ref);
  EXPECT_EQ(Reused.Gen, LiveGen + 2) << "free and reuse each bump once";
  EXPECT_NE(H.deref(Reused), nullptr);
}

TEST_F(HeapTest, NoReuseModeKeepsRetiringSlots) {
  Heap H(/*MaxObjects=*/0, /*ReuseIds=*/false);
  Value A = *H.allocate(arrayType(), 1);
  EXPECT_EQ(H.unlink(A), HeapStatus::OK);
  Value B = *H.allocate(arrayType(), 1);
  EXPECT_NE(A.Ref, B.Ref) << "without reuse every allocation grows the table";
  EXPECT_EQ(H.objects().size(), 2u);
}

TEST_F(HeapTest, BoundedTableStillExhaustsWithFreeList) {
  Heap H(/*MaxObjects=*/2);
  Value A = *H.allocate(arrayType(), 1);
  Value B = *H.allocate(arrayType(), 1);
  EXPECT_FALSE(H.allocate(arrayType(), 1)) << "table is full";
  EXPECT_EQ(H.unlink(A), HeapStatus::OK);
  EXPECT_TRUE(H.allocate(arrayType(), 1)) << "freed slot is available again";
  EXPECT_FALSE(H.allocate(arrayType(), 1));
  EXPECT_TRUE(H.isLive(B));
}

} // namespace

//===--- test_sema.cpp - Semantic checker unit tests --------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

using namespace esp;
using namespace esp::test;

namespace {

//===----------------------------------------------------------------------===//
// Constants
//===----------------------------------------------------------------------===//

TEST(Sema, ConstEvaluation) {
  auto C = compile(R"(
const A = 4;
const B = A * 3 + 2;
const FLAG = A < B;
channel c: int
process p { out(c, B); }
process q { in(c, $x); assert(x == 14); assert(FLAG); }
)");
  ASSERT_TRUE(C);
  EXPECT_EQ(C->Prog->findConst("B")->Value, 14);
  EXPECT_EQ(C->Prog->findConst("FLAG")->Value, 1);
}

TEST(Sema, NonConstantInitializerRejected) {
  expectDiagnostic("const N = 1 / 0;\nchannel c: int\n"
                   "process p { out(c, 1); }\nprocess q { in(c, $x); }",
                   "not a compile-time constant");
}

TEST(Sema, AggregateConstantRejected) {
  expectDiagnostic("const A = { 4 -> 0 };\nchannel c: int\n"
                   "process p { out(c, 1); }\nprocess q { in(c, $x); }",
                   "must be int or bool");
}

//===----------------------------------------------------------------------===//
// Statement-level type inference (§4.1)
//===----------------------------------------------------------------------===//

TEST(Sema, TypeInferenceFromInitializer) {
  auto C = compile(R"(
channel c: int
process p {
  $i = 45;
  $b = true;
  $a = { 4 -> i };
  out(c, a[0]);
  unlink(a);
}
process q { in(c, $x); }
)");
  ASSERT_TRUE(C);
  const ProcessDecl *P = C->Prog->findProcess("p");
  ASSERT_TRUE(P);
  EXPECT_TRUE(P->Vars[0]->VarType->isInt());
  EXPECT_TRUE(P->Vars[1]->VarType->isBool());
  EXPECT_TRUE(P->Vars[2]->VarType->isArray());
}

TEST(Sema, AnnotationMismatchRejected) {
  expectDiagnostic("channel c: int\nprocess p { $i: bool = 7; out(c, 1); }\n"
                   "process q { in(c, $x); }",
                   "does not match the declared type");
}

TEST(Sema, RecordLiteralNeedsExpectedType) {
  expectDiagnostic("channel c: int\nprocess p { $r = { 1, 2 }; out(c, 1); }\n"
                   "process q { in(c, $x); }",
                   "cannot infer the type of this record literal");
}

TEST(Sema, RecordLiteralArityChecked) {
  expectDiagnostic(R"(
type rT = record of { a: int, b: int }
channel c: rT
process p { out(c, { 1, 2, 3 }); }
process q { in(c, $r); }
)",
                   "3 values but type has 2 fields");
}

TEST(Sema, UnionLiteralUnknownFieldRejected) {
  expectDiagnostic(R"(
type uT = union of { a: int }
channel c: uT
process p { out(c, { nope |> 1 }); }
process q { in(c, $u); }
)",
                   "no field named 'nope'");
}

TEST(Sema, UndeclaredNameRejected) {
  expectDiagnostic("channel c: int\nprocess p { out(c, ghost); }\n"
                   "process q { in(c, $x); }",
                   "use of undeclared name 'ghost'");
}

TEST(Sema, SlotSharingRequiresConsistentTypes) {
  // All uses of a name in one process share a storage slot (§4.3);
  // conflicting types are rejected.
  expectDiagnostic(R"(
channel c: int
channel b: bool
process p {
  alt {
    case( in( c, $v)) { }
    case( in( b, $v)) { }
  }
}
process w { out(c, 1); out(b, true); }
)",
                   "must agree");
}

TEST(Sema, SlotSharingAcrossAltCasesWorks) {
  // pageTable binds $vAddr in two different alt cases (Appendix B).
  auto C = compile(R"(
channel a: int
channel b: int
channel r: int
process p {
  while (true) {
    alt {
      case( in( a, $v)) { out(r, v); }
      case( in( b, $v)) { out(r, v + 100); }
    }
  }
}
process w { out(a, 1); out(b, 2); in(r, $x); in(r, $y); }
)");
  ASSERT_TRUE(C);
  // One shared slot for $v.
  EXPECT_EQ(C->Prog->findProcess("p")->NumSlots, 1u);
}

//===----------------------------------------------------------------------===//
// Mutability (§4.1/§4.2)
//===----------------------------------------------------------------------===//

TEST(Sema, StoreIntoImmutableArrayRejected) {
  expectDiagnostic(R"(
channel c: int
process p {
  $a: array of int = { 4 -> 0 };
  a[0] = 1;
  out(c, 1);
}
process q { in(c, $x); }
)",
                   "immutable");
}

TEST(Sema, StoreIntoImmutableRecordFieldRejected) {
  expectDiagnostic(R"(
type rT = record of { a: int }
channel c: rT
process p {
  in(c, $r);
  r.a = 5;
}
process w { out(c, { 1 }); }
)",
                   "immutable");
}

TEST(Sema, MutableStoresAccepted) {
  auto C = compile(R"(
channel c: int
type mrT = #record of { a: int }
process p {
  $a: #array of int = #{ 4 -> 0 };
  a[0] = 1;
  $r: mrT = #{ 5 };
  r.a = 6;
  out(c, a[0] + r.a);
  unlink(a);
  unlink(r);
}
process q { in(c, $x); assert(x == 7); }
)");
  ASSERT_TRUE(C);
}

TEST(Sema, ChannelOfMutableTypeRejected) {
  expectDiagnostic("channel c: #array of int\n"
                   "process p { $a: #array of int = #{ 1 -> 0 }; out(c, a); }\n"
                   "process q { in(c, $x); }",
                   "only immutable objects can be sent");
}

TEST(Sema, ChannelOfNestedMutableTypeRejected) {
  expectDiagnostic(R"(
type innerT = #array of int
type outerT = record of { data: innerT }
channel c: outerT
process p { in(c, $x); }
process q { in(c, $y); }
)",
                   "only immutable objects can be sent");
}

TEST(Sema, CastFlipsDeepMutability) {
  auto C = compile(R"(
type rT = record of { data: array of int }
channel c: rT
process p {
  $m: #record of { data: #array of int } = #{ #{ 2 -> 7 } };
  $frozen = cast(m);
  out(c, frozen);
  unlink(m);
  unlink(frozen);
}
process q { in(c, $r); assert(r.data[0] == 7); unlink(r); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, MachineOptions());
  M.start();
  EXPECT_EQ(M.run(1000), Machine::StepResult::Halted) << M.error().Message;
}

TEST(Sema, CastOfScalarRejected) {
  expectDiagnostic("channel c: int\nprocess p { out(c, cast(3)); }\n"
                   "process q { in(c, $x); }",
                   "scalar casts are meaningless");
}

TEST(Sema, LinkOfScalarRejected) {
  expectDiagnostic("channel c: int\nprocess p { $i = 1; link(i); out(c, 1); }\n"
                   "process q { in(c, $x); }",
                   "link/unlink operates on heap objects");
}

//===----------------------------------------------------------------------===//
// Channels, directions, guards
//===----------------------------------------------------------------------===//

TEST(Sema, UnknownChannelRejected) {
  expectDiagnostic("process p { out(ghostC, 1); }", "unknown channel");
}

TEST(Sema, ProcessCannotReadExternalReaderChannel) {
  expectDiagnostic(R"(
channel c: int
interface I(in c) { Got( $v ) }
process p { in(c, $x); }
)",
                   "has an external reader");
}

TEST(Sema, ProcessCannotWriteExternalWriterChannel) {
  expectDiagnostic(R"(
channel c: int
interface I(out c) { Put( $v ) }
process p { out(c, 1); }
process q { in(c, $x); }
)",
                   "has an external writer");
}

TEST(Sema, ChannelCannotHaveTwoInterfaces) {
  expectDiagnostic(R"(
channel c: int
interface A(out c) { Put( $v ) }
interface B(in c) { Got( $v ) }
process p { in(c, $x); }
)",
                   "external reader or writer but not both");
}

TEST(Sema, GuardMustBeBool) {
  expectDiagnostic(R"(
channel c: int
process p {
  alt { case( 1 + 1, in( c, $v)) { } }
}
process w { out(c, 1); }
)",
                   "guard must be bool");
}

TEST(Sema, GuardMayNotAllocate) {
  expectDiagnostic(R"(
channel c: int
process p {
  $a: array of int = { 1 -> 0 };
  alt { case( cast(a)[0] == 0, in( c, $v)) { } }
}
process w { out(c, 1); }
)",
                   "must not allocate");
}

TEST(Sema, OutTypeMustMatchChannel) {
  expectDiagnostic("channel c: int\nprocess p { out(c, true); }\n"
                   "process q { in(c, $x); }",
                   "sending");
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

TEST(Sema, PatternArityMismatchRejected) {
  expectDiagnostic(R"(
type rT = record of { a: int, b: int }
channel c: rT
process p { in(c, { $a }); }
process w { out(c, { 1, 2 }); }
)",
                   "type has 2 fields");
}

TEST(Sema, AggregateEqualityMatchRejected) {
  expectDiagnostic(R"(
type rT = record of { data: array of int }
channel c: rT
process p {
  $d: array of int = { 1 -> 0 };
  in(c, { d });
}
process w { out(c, { { 1 -> 0 } }); }
)",
                   "must be scalar");
}

TEST(Sema, SelfIdOutsideProcessRejected) {
  expectDiagnostic("const X = @;\nchannel c: int\nprocess p { out(c, 1); }\n"
                   "process q { in(c, $x); }",
                   "may only appear inside a process");
}

TEST(Sema, InterfacePatternConstantsMustBeStatic) {
  expectDiagnostic(R"(
type rT = record of { tag: int, v: int }
channel c: rT
interface I(out c) { Put( { @, $v } ) }
process p { in(c, { $tag, $v }); }
)",
                   "compile-time constants");
}

//===----------------------------------------------------------------------===//
// Pattern-dispatch analysis (§4.2)
//===----------------------------------------------------------------------===//

TEST(PatternDispatch, OverlappingReadersRejected) {
  expectDiagnostic(R"(
channel c: int
process a { in(c, $x); }
process b { in(c, $y); }
process w { out(c, 1); }
)",
                   "must be disjoint");
}

TEST(PatternDispatch, DisjointConstantsAccepted) {
  auto C = compile(R"(
type rT = record of { tag: int, v: int }
channel c: rT
channel d: int
process a { in(c, { 0, $v }); out(d, v); }
process b { in(c, { 1, $v }); out(d, v); }
process w { out(c, { 0, 10 }); out(c, { 1, 20 }); in(d, $r1); in(d, $r2); }
)");
  EXPECT_TRUE(C != nullptr);
}

TEST(PatternDispatch, DisjointUnionArmsAccepted) {
  auto C = compile(R"(
type uT = union of { a: int, b: int }
channel c: uT
channel d: int
process pa { in(c, { a |> $x }); out(d, x); }
process pb { in(c, { b |> $y }); out(d, y); }
process w { out(c, { a |> 1 }); out(c, { b |> 2 }); in(d, $r); in(d, $s); }
)");
  EXPECT_TRUE(C != nullptr);
}

TEST(PatternDispatch, OverlappingUnionArmsRejected) {
  expectDiagnostic(R"(
type uT = union of { a: int, b: int }
channel c: uT
process pa { in(c, { a |> $x }); }
process pb { in(c, { a |> $y }); }
process w { out(c, { a |> 1 }); }
)",
                   "must be disjoint");
}

TEST(PatternDispatch, SelfIdPatternsAreDisjointPerProcess) {
  auto C = compile(R"(
type rT = record of { ret: int, v: int }
channel reply: rT
channel done: int
process a { in(reply, { @, $v }); out(done, v); }
process b { in(reply, { @, $v }); out(done, v); }
process server { out(reply, { 0, 10 }); out(reply, { 1, 20 });
                 in(done, $x); in(done, $y); }
)");
  EXPECT_TRUE(C != nullptr);
}

TEST(PatternDispatch, SameProcessMayReuseItsPattern) {
  auto C = compile(R"(
channel c: int
channel d: int
process a {
  in(c, $x);
  out(d, x);
  in(c, $y);
  out(d, y);
}
process w { out(c, 1); out(c, 2); in(d, $p); in(d, $q); }
)");
  EXPECT_TRUE(C != nullptr);
}

TEST(PatternDispatch, NonExhaustivePatternsWarn) {
  Compilation C;
  C.Prog = Parser::parse(C.SM, *C.Diags, "warn.esp", R"(
type uT = union of { a: int, b: int }
channel c: uT
channel d: int
process pa { in(c, { a |> $x }); out(d, x); }
process w { out(c, { a |> 1 }); in(d, $r); }
)");
  ASSERT_TRUE(C.Prog);
  EXPECT_TRUE(checkProgram(*C.Prog, *C.Diags)); // Warning, not error.
  EXPECT_TRUE(C.Diags->containsMessage("may not be exhaustive"));
}

TEST(PatternDispatch, UnreadChannelWarns) {
  Compilation C;
  C.Prog = Parser::parse(C.SM, *C.Diags, "warn.esp", R"(
channel c: int
channel d: int
process p { out(c, 1); }
process q { in(d, $x); }
process w { out(d, 2); }
)");
  ASSERT_TRUE(C.Prog);
  EXPECT_TRUE(checkProgram(*C.Prog, *C.Diags));
  EXPECT_TRUE(C.Diags->containsMessage("written but never read"));
}

TEST(PatternDispatch, EmptyProgramRejected) {
  expectDiagnostic("channel c: int", "declares no processes");
}

} // namespace

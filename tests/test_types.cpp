//===--- test_types.cpp - Type system unit tests -------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Type.h"

#include <gtest/gtest.h>

using namespace esp;

namespace {

TEST(Types, ScalarsAreSingletons) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.getIntType(), Ctx.getIntType());
  EXPECT_EQ(Ctx.getBoolType(), Ctx.getBoolType());
  EXPECT_NE(Ctx.getIntType(), Ctx.getBoolType());
  EXPECT_TRUE(Ctx.getIntType()->isScalar());
  EXPECT_FALSE(Ctx.getIntType()->isAggregate());
}

TEST(Types, StructuralUniquing) {
  TypeContext Ctx;
  const Type *A = Ctx.getRecordType(
      {{"x", Ctx.getIntType()}, {"y", Ctx.getBoolType()}}, false);
  const Type *B = Ctx.getRecordType(
      {{"x", Ctx.getIntType()}, {"y", Ctx.getBoolType()}}, false);
  EXPECT_EQ(A, B);
  // Field names are part of the structure.
  const Type *C = Ctx.getRecordType(
      {{"z", Ctx.getIntType()}, {"y", Ctx.getBoolType()}}, false);
  EXPECT_NE(A, C);
  // Field order matters.
  const Type *D = Ctx.getRecordType(
      {{"y", Ctx.getBoolType()}, {"x", Ctx.getIntType()}}, false);
  EXPECT_NE(A, D);
}

TEST(Types, MutabilityDistinguishesTypes) {
  TypeContext Ctx;
  const Type *Imm = Ctx.getArrayType(Ctx.getIntType(), false);
  const Type *Mut = Ctx.getArrayType(Ctx.getIntType(), true);
  EXPECT_NE(Imm, Mut);
  EXPECT_FALSE(Imm->isMutable());
  EXPECT_TRUE(Mut->isMutable());
  EXPECT_EQ(Ctx.withMutability(Imm, true), Mut);
  EXPECT_EQ(Ctx.withMutability(Mut, false), Imm);
  EXPECT_EQ(Ctx.withMutability(Imm, false), Imm);
}

TEST(Types, RecordVersusUnionAreDistinct) {
  TypeContext Ctx;
  std::vector<TypeField> Fields = {{"a", Ctx.getIntType()}};
  EXPECT_NE(Ctx.getRecordType(Fields, false),
            Ctx.getUnionType(Fields, false));
}

TEST(Types, FieldIndexLookup) {
  TypeContext Ctx;
  const Type *R = Ctx.getRecordType(
      {{"dest", Ctx.getIntType()}, {"size", Ctx.getIntType()}}, false);
  EXPECT_EQ(R->getFieldIndex("dest"), 0);
  EXPECT_EQ(R->getFieldIndex("size"), 1);
  EXPECT_EQ(R->getFieldIndex("nope"), -1);
}

TEST(Types, SendabilityIsDeep) {
  TypeContext Ctx;
  const Type *MutArr = Ctx.getArrayType(Ctx.getIntType(), true);
  const Type *ImmArr = Ctx.getArrayType(Ctx.getIntType(), false);
  EXPECT_TRUE(ImmArr->isSendable());
  EXPECT_FALSE(MutArr->isSendable());
  // Immutable record holding a mutable array: not sendable.
  const Type *Hybrid = Ctx.getRecordType({{"data", MutArr}}, false);
  EXPECT_FALSE(Hybrid->isSendable());
  const Type *Clean = Ctx.getRecordType({{"data", ImmArr}}, false);
  EXPECT_TRUE(Clean->isSendable());
}

TEST(Types, DeepMutabilityFlip) {
  TypeContext Ctx;
  const Type *Inner = Ctx.getArrayType(Ctx.getIntType(), true);
  const Type *Outer = Ctx.getRecordType({{"data", Inner}}, true);
  const Type *Frozen = Ctx.withDeepMutability(Outer, false);
  EXPECT_FALSE(Frozen->isMutable());
  EXPECT_FALSE(Frozen->getFields()[0].FieldType->isMutable());
  EXPECT_TRUE(Frozen->isSendable());
  // Round trip.
  EXPECT_EQ(Ctx.withDeepMutability(Frozen, true), Outer);
}

TEST(Types, Printing) {
  TypeContext Ctx;
  EXPECT_EQ(Ctx.getIntType()->str(), "int");
  const Type *Arr = Ctx.getArrayType(Ctx.getIntType(), true);
  EXPECT_EQ(Arr->str(), "#array of int");
  const Type *R = Ctx.getRecordType({{"a", Arr}}, false);
  EXPECT_EQ(R->str(), "record of { a: #array of int }");
  const Type *U = Ctx.getUnionType({{"x", Ctx.getBoolType()}}, false);
  EXPECT_EQ(U->str(), "union of { x: bool }");
}

TEST(Types, NestedAggregatesUnique) {
  TypeContext Ctx;
  const Type *Inner = Ctx.getRecordType({{"v", Ctx.getIntType()}}, false);
  const Type *A = Ctx.getArrayType(Inner, false);
  const Type *B =
      Ctx.getArrayType(Ctx.getRecordType({{"v", Ctx.getIntType()}}, false),
                       false);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A->getElementType(), Inner);
}

} // namespace

//===--- test_vmmc.cpp - VMMC case study integration tests ------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "vmmc/EspFirmware.h"
#include "vmmc/EspFirmwareSource.h"
#include "vmmc/OrigFirmware.h"
#include "vmmc/Workloads.h"

#include <gtest/gtest.h>

using namespace esp;
using namespace esp::vmmc;

namespace {

class VmmcAllFirmwares : public ::testing::TestWithParam<FirmwareKind> {};

INSTANTIATE_TEST_SUITE_P(
    Kinds, VmmcAllFirmwares,
    ::testing::Values(FirmwareKind::Esp, FirmwareKind::Orig,
                      FirmwareKind::OrigNoFastPaths),
    [](const ::testing::TestParamInfo<FirmwareKind> &Info) {
      return std::string(firmwareKindName(Info.param));
    });

TEST_P(VmmcAllFirmwares, SmallMessagePingpong) {
  WorkloadResult R = runPingpong(GetParam(), 4, /*Iterations=*/8);
  EXPECT_TRUE(R.Completed);
  EXPECT_GT(R.OneWayLatencyUs, 0.0);
  EXPECT_GT(R.FirmwareCyclesNode0, 0u);
}

TEST_P(VmmcAllFirmwares, MediumMessagePingpong) {
  WorkloadResult R = runPingpong(GetParam(), 1024, /*Iterations=*/8);
  EXPECT_TRUE(R.Completed);
  EXPECT_GT(R.OneWayLatencyUs, 0.0);
}

TEST_P(VmmcAllFirmwares, MultiPacketMessagePingpong) {
  // 16 KB = 4 MTU-sized packets per message.
  WorkloadResult R = runPingpong(GetParam(), 16384, /*Iterations=*/4);
  EXPECT_TRUE(R.Completed);
}

TEST_P(VmmcAllFirmwares, OneWayBandwidth) {
  WorkloadResult R = runOneWay(GetParam(), 4096, /*NumMessages=*/32);
  EXPECT_TRUE(R.Completed);
  EXPECT_GT(R.BandwidthMBs, 1.0);
}

TEST_P(VmmcAllFirmwares, BidirectionalBandwidth) {
  WorkloadResult R = runBidirectional(GetParam(), 4096, /*NumMessages=*/24);
  EXPECT_TRUE(R.Completed);
  EXPECT_GT(R.BandwidthMBs, 1.0);
}

TEST_P(VmmcAllFirmwares, RetransmissionRecoversFromLoss) {
  // Drop every 7th data packet; the sliding-window protocol must still
  // deliver everything (§5.3's protocol, exercised under loss).
  WorkloadResult R =
      runLossyPingpong(GetParam(), 256, /*Iterations=*/6, /*DropEveryN=*/7);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.MessagesDelivered, 12u);
}

TEST(VmmcShape, FastPathBeatsNoFastPathOnSmallMessages) {
  WorkloadResult Fast = runPingpong(FirmwareKind::Orig, 4, 16);
  WorkloadResult Slow = runPingpong(FirmwareKind::OrigNoFastPaths, 4, 16);
  ASSERT_TRUE(Fast.Completed && Slow.Completed);
  EXPECT_LT(Fast.OneWayLatencyUs, Slow.OneWayLatencyUs);
}

TEST(VmmcShape, EspSlowerThanOrigOnSmallMessages) {
  WorkloadResult Esp = runPingpong(FirmwareKind::Esp, 4, 16);
  WorkloadResult Orig = runPingpong(FirmwareKind::Orig, 4, 16);
  ASSERT_TRUE(Esp.Completed && Orig.Completed);
  // The paper: vmmcESP is around twice as slow as vmmcOrig for 4-byte
  // messages. Accept a broad band; the bench records the exact ratio.
  EXPECT_GT(Esp.OneWayLatencyUs, Orig.OneWayLatencyUs);
}

TEST(VmmcShape, CurvesConvergeAtLargeMessages) {
  WorkloadResult Esp = runOneWay(FirmwareKind::Esp, 65536, 16);
  WorkloadResult Orig = runOneWay(FirmwareKind::Orig, 65536, 16);
  ASSERT_TRUE(Esp.Completed && Orig.Completed);
  // Within ~20% of each other at 64 KB (the paper reports 14%).
  EXPECT_GT(Esp.BandwidthMBs, Orig.BandwidthMBs * 0.75);
}

TEST(VmmcShape, FastPathCounterMovesOnlyWithFastPaths) {
  auto Sim = makeTwoNodeSystem(FirmwareKind::Orig);
  auto *FW = static_cast<OrigFirmware *>(Sim->nic(0).firmware());
  sim::HostReq Req;
  Req.K = sim::HostReq::Kind::Send;
  Req.Dest = 1;
  Req.Size = 16;
  Req.Token = 1;
  unsigned Received = 0;
  Sim->nic(1).OnRecv = [&](const sim::RecvNotification &) { ++Received; };
  Sim->nic(0).postRequest(Req);
  Sim->runUntil([&] { return Received > 0; }, 1'000'000'000ULL);
  EXPECT_EQ(Received, 1u);
  EXPECT_EQ(FW->FastPathTaken, 1u);
  EXPECT_EQ(FW->SlowPathTaken, 0u);
}

TEST(VmmcUpdates, TranslationUpdatesAreApplied) {
  // Post an Update, then a Send whose translation uses it; delivery
  // proves the pageTable process handled the dispatched update (§4.2).
  auto Sim = makeTwoNodeSystem(FirmwareKind::Esp);
  sim::HostReq Upd;
  Upd.K = sim::HostReq::Kind::Update;
  Upd.VAddr = 0x10000;
  Upd.PAddr = 0x900000;
  Sim->nic(0).postRequest(Upd);
  unsigned Received = 0;
  Sim->nic(1).OnRecv = [&](const sim::RecvNotification &) { ++Received; };
  sim::HostReq Req;
  Req.K = sim::HostReq::Kind::Send;
  Req.Dest = 1;
  Req.VAddr = 0x10000;
  Req.Size = 2048;
  Req.Token = 7;
  Sim->nic(0).postRequest(Req);
  bool Done = Sim->runUntil([&] { return Received > 0; }, 1'000'000'000ULL);
  EXPECT_TRUE(Done);
}

TEST(VmmcLoc, EspSourceLineCountsMatchPaperScale) {
  // The paper: ~200 lines of declarations + ~300 lines of process code.
  unsigned Decl = getVmmcEspDeclLines();
  unsigned Proc = getVmmcEspProcessLines();
  EXPECT_GT(Decl, 30u);
  EXPECT_GT(Proc, 80u);
  EXPECT_LT(Decl + Proc, 600u);
}

} // namespace

//===--- test_parser.cpp - Parser unit tests ---------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

using namespace esp;

namespace {

/// Parses without running Sema; returns null on parse errors.
std::unique_ptr<Program> parseOnly(const std::string &Source,
                                   std::string *Errors = nullptr) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  std::unique_ptr<Program> Prog =
      Parser::parse(SM, Diags, "parse.esp", Source);
  if (Errors)
    *Errors = Diags.renderAll();
  return Prog;
}

void expectParseError(const std::string &Source,
                      const std::string &Fragment) {
  std::string Errors;
  std::unique_ptr<Program> Prog = parseOnly(Source, &Errors);
  EXPECT_EQ(Prog, nullptr) << "expected parse failure";
  EXPECT_NE(Errors.find(Fragment), std::string::npos)
      << "diagnostics were:\n"
      << Errors;
}

//===----------------------------------------------------------------------===//
// Top-level declarations
//===----------------------------------------------------------------------===//

TEST(Parser, EmptyProgramParses) {
  auto Prog = parseOnly("");
  ASSERT_TRUE(Prog);
  EXPECT_TRUE(Prog->Processes.empty());
  EXPECT_TRUE(Prog->Channels.empty());
}

TEST(Parser, TypeDeclarations) {
  auto Prog = parseOnly(R"(
type a = int
type b = bool
type r = record of { x: int, y: bool }
type u = union of { p: int, q: r }
type arr = array of int
type marr = #array of int
)");
  ASSERT_TRUE(Prog);
  ASSERT_EQ(Prog->TypeDecls.size(), 6u);
  EXPECT_TRUE(Prog->findTypeDecl("r")->Resolved->isRecord());
  EXPECT_TRUE(Prog->findTypeDecl("u")->Resolved->isUnion());
  EXPECT_TRUE(Prog->findTypeDecl("arr")->Resolved->isArray());
  EXPECT_FALSE(Prog->findTypeDecl("arr")->Resolved->isMutable());
  EXPECT_TRUE(Prog->findTypeDecl("marr")->Resolved->isMutable());
}

TEST(Parser, NamedTypesResolveStructurally) {
  auto Prog = parseOnly(R"(
type a = record of { x: int }
type b = record of { x: int }
)");
  ASSERT_TRUE(Prog);
  // Structural typing: same shape, same uniqued type.
  EXPECT_EQ(Prog->findTypeDecl("a")->Resolved,
            Prog->findTypeDecl("b")->Resolved);
}

TEST(Parser, UnknownTypeNameIsError) {
  expectParseError("type t = record of { x: mysteryT }", "unknown type");
}

TEST(Parser, TypeRedefinitionIsError) {
  expectParseError("type t = int\ntype t = bool", "redefinition");
}

TEST(Parser, FieldListAllowsTrailingEllipsis) {
  // The paper's examples elide fields with "...".
  auto Prog = parseOnly("type u = union of { send: int, update: bool, ... }");
  ASSERT_TRUE(Prog);
  EXPECT_EQ(Prog->findTypeDecl("u")->Resolved->getFields().size(), 2u);
}

TEST(Parser, ChannelDeclarations) {
  auto Prog = parseOnly(R"(
type msgT = record of { a: int }
channel c1: int
channel c2: msgT
)");
  ASSERT_TRUE(Prog);
  ASSERT_EQ(Prog->Channels.size(), 2u);
  EXPECT_EQ(Prog->Channels[0]->Id, 0u);
  EXPECT_EQ(Prog->Channels[1]->Id, 1u);
  EXPECT_TRUE(Prog->findChannel("c2")->ElemType->isRecord());
}

TEST(Parser, ConstDeclarations) {
  auto Prog = parseOnly("const N = 4;\nconst FLAG = true;");
  ASSERT_TRUE(Prog);
  EXPECT_EQ(Prog->ConstDecls.size(), 2u);
  EXPECT_NE(Prog->findConst("N"), nullptr);
}

TEST(Parser, InterfaceDeclarations) {
  auto Prog = parseOnly(R"(
type sendT = record of { dest: int }
type userT = union of { send: sendT }
channel userReqC: userT
interface UserReq(out userReqC) {
  Send( { send |> { $dest } } )
}
channel doneC: int
interface Done(in doneC) { Finished( $v ) }
)");
  ASSERT_TRUE(Prog);
  ASSERT_EQ(Prog->Interfaces.size(), 2u);
  EXPECT_TRUE(Prog->Interfaces[0]->ExternalWrites);
  EXPECT_FALSE(Prog->Interfaces[1]->ExternalWrites);
  EXPECT_EQ(Prog->Interfaces[0]->Cases.size(), 1u);
  EXPECT_EQ(Prog->Interfaces[0]->Cases[0].Name, "Send");
}

TEST(Parser, InterfaceRequiresDirection) {
  expectParseError(
      "channel c: int\ninterface I(c) { A( $v ) }\nprocess p { in(c, $x); }",
      "expected 'in' or 'out'");
}

TEST(Parser, ProcessIdsAreDense) {
  auto Prog = parseOnly(R"(
channel c: int
process a { out(c, 1); }
process b { in(c, $x); }
process d { in(c, $y); }
)");
  ASSERT_TRUE(Prog);
  ASSERT_EQ(Prog->Processes.size(), 3u);
  EXPECT_EQ(Prog->Processes[0]->ProcessId, 0u);
  EXPECT_EQ(Prog->Processes[2]->ProcessId, 2u);
  EXPECT_EQ(Prog->findProcess("d"), Prog->Processes[2].get());
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

/// Parses a single-process program and returns its body.
const BlockStmt *parseBody(const std::string &Stmts,
                           std::unique_ptr<Program> &Keep) {
  Keep = parseOnly("channel c: int\nchannel d: int\nprocess p {\n" + Stmts +
                   "\n}");
  if (!Keep || Keep->Processes.empty())
    return nullptr;
  return Keep->Processes[0]->Body;
}

TEST(Parser, DeclWithAndWithoutAnnotation) {
  std::unique_ptr<Program> Keep;
  const BlockStmt *Body = parseBody("$i: int = 7;\n$j = 36;", Keep);
  ASSERT_TRUE(Body);
  ASSERT_EQ(Body->getBody().size(), 2u);
  const auto *D0 = ast_dyn_cast<DeclStmt>(Body->getBody()[0]);
  const auto *D1 = ast_dyn_cast<DeclStmt>(Body->getBody()[1]);
  ASSERT_TRUE(D0 && D1);
  EXPECT_NE(D0->getAnnotation(), nullptr);
  EXPECT_EQ(D1->getAnnotation(), nullptr); // Inferred (§4.1).
}

TEST(Parser, WhileWithoutConditionLoopsForever) {
  // The paper writes `while { alt { ... } }`.
  std::unique_ptr<Program> Keep;
  const BlockStmt *Body = parseBody("while { in(c, $x); }", Keep);
  ASSERT_TRUE(Body);
  const auto *W = ast_dyn_cast<WhileStmt>(Body->getBody()[0]);
  ASSERT_TRUE(W);
  EXPECT_EQ(W->getCond(), nullptr);
}

TEST(Parser, WhileTrueNormalizedToForever) {
  std::unique_ptr<Program> Keep;
  const BlockStmt *Body = parseBody("while (true) { in(c, $x); }", Keep);
  ASSERT_TRUE(Body);
  EXPECT_EQ(ast_cast<WhileStmt>(Body->getBody()[0])->getCond(), nullptr);
}

TEST(Parser, StandaloneInOutDesugarToSingleCaseAlt) {
  std::unique_ptr<Program> Keep;
  const BlockStmt *Body = parseBody("in(c, $x);\nout(d, x);", Keep);
  ASSERT_TRUE(Body);
  const auto *A0 = ast_dyn_cast<AltStmt>(Body->getBody()[0]);
  const auto *A1 = ast_dyn_cast<AltStmt>(Body->getBody()[1]);
  ASSERT_TRUE(A0 && A1);
  EXPECT_EQ(A0->getCases().size(), 1u);
  EXPECT_TRUE(A0->getCases()[0].Action.IsIn);
  EXPECT_FALSE(A1->getCases()[0].Action.IsIn);
  EXPECT_EQ(A0->getCases()[0].Guard, nullptr);
}

TEST(Parser, AltWithGuardsAndBodies) {
  std::unique_ptr<Program> Keep;
  const BlockStmt *Body = parseBody(R"(
$full = false;
alt {
  case( !full, in( c, $v)) { full = true; }
  case( full, out( d, 1)) { full = false; }
  case( in( c, $w))
}
)",
                                    Keep);
  ASSERT_TRUE(Body);
  const auto *A = ast_dyn_cast<AltStmt>(Body->getBody()[1]);
  ASSERT_TRUE(A);
  ASSERT_EQ(A->getCases().size(), 3u);
  EXPECT_NE(A->getCases()[0].Guard, nullptr);
  EXPECT_NE(A->getCases()[1].Guard, nullptr);
  EXPECT_EQ(A->getCases()[2].Guard, nullptr);
  EXPECT_NE(A->getCases()[0].Body, nullptr);
  EXPECT_EQ(A->getCases()[2].Body, nullptr);
}

TEST(Parser, EmptyAltIsError) {
  expectParseError("channel c: int\nprocess p { alt { } }",
                   "at least one case");
}

TEST(Parser, LinkUnlinkAssert) {
  std::unique_ptr<Program> Keep;
  const BlockStmt *Body = parseBody(
      "$a: #array of int = #{ 4 -> 0 };\nlink(a);\nunlink(a);\n"
      "assert(a[0] == 0);",
      Keep);
  ASSERT_TRUE(Body);
  EXPECT_EQ(Body->getBody()[1]->getKind(), StmtKind::Link);
  EXPECT_EQ(Body->getBody()[2]->getKind(), StmtKind::Unlink);
  EXPECT_EQ(Body->getBody()[3]->getKind(), StmtKind::Assert);
}

TEST(Parser, PatternAssignmentStatement) {
  // The paper's `{ send |> { $dest, $vAddr, $size}}: userT = ur2;`.
  std::unique_ptr<Program> Keep;
  Keep = parseOnly(R"(
type sendT = record of { dest: int, size: int }
type userT = union of { send: sendT }
channel c: userT
process p {
  in(c, $ur);
  { send |> { $dest, $size } }: userT = ur;
  out(d, dest + size);
}
channel d: int
)");
  ASSERT_TRUE(Keep);
  const BlockStmt *Body = Keep->Processes[0]->Body;
  const auto *A = ast_dyn_cast<AssignStmt>(Body->getBody()[1]);
  ASSERT_TRUE(A);
  EXPECT_NE(A->getAnnotation(), nullptr);
  EXPECT_EQ(A->getLHS()->getKind(), PatternKind::Union);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

TEST(Parser, OperatorPrecedence) {
  std::unique_ptr<Program> Keep;
  const BlockStmt *Body = parseBody("$x = 1 + 2 * 3 - 4 / 2;", Keep);
  ASSERT_TRUE(Body);
  const auto *D = ast_cast<DeclStmt>(Body->getBody()[0]);
  // ((1 + (2*3)) - (4/2)): top is '-'.
  const auto *Top = ast_dyn_cast<BinaryExpr>(D->getInit());
  ASSERT_TRUE(Top);
  EXPECT_EQ(Top->getOp(), BinaryOp::Sub);
  const auto *L = ast_dyn_cast<BinaryExpr>(Top->getLHS());
  ASSERT_TRUE(L);
  EXPECT_EQ(L->getOp(), BinaryOp::Add);
}

TEST(Parser, ComparisonBindsTighterThanLogical) {
  std::unique_ptr<Program> Keep;
  const BlockStmt *Body = parseBody("$b = 1 < 2 && 3 >= 2 || false;", Keep);
  ASSERT_TRUE(Body);
  const auto *Top = ast_dyn_cast<BinaryExpr>(
      ast_cast<DeclStmt>(Body->getBody()[0])->getInit());
  ASSERT_TRUE(Top);
  EXPECT_EQ(Top->getOp(), BinaryOp::Or);
}

TEST(Parser, PostfixChains) {
  std::unique_ptr<Program> Keep;
  Keep = parseOnly(R"(
type innerT = record of { arr: array of int }
type outerT = record of { inner: innerT }
channel c: outerT
process p {
  in(c, $o);
  $x = o.inner.arr[3];
}
)");
  ASSERT_TRUE(Keep);
  const auto *D =
      ast_cast<DeclStmt>(Keep->Processes[0]->Body->getBody()[1]);
  const auto *Ix = ast_dyn_cast<IndexExpr>(D->getInit());
  ASSERT_TRUE(Ix);
  const auto *F = ast_dyn_cast<FieldExpr>(Ix->getBase());
  ASSERT_TRUE(F);
  EXPECT_EQ(F->getFieldName(), "arr");
}

TEST(Parser, BraceLiteralKinds) {
  std::unique_ptr<Program> Keep;
  Keep = parseOnly(R"(
type rT = record of { a: int, b: int }
type uT = union of { f: int }
channel cr: rT
channel cu: uT
process p {
  $arr: #array of int = #{ 8 -> 0, ... };
  out(cr, { 1, 2 });
  out(cu, { f |> 3 });
}
)");
  ASSERT_TRUE(Keep);
  const auto &Stmts = Keep->Processes[0]->Body->getBody();
  const auto *D = ast_cast<DeclStmt>(Stmts[0]);
  EXPECT_EQ(D->getInit()->getKind(), ExprKind::ArrayLit);
  EXPECT_TRUE(ast_cast<ArrayLitExpr>(D->getInit())->isMutableLit());
  const auto *O1 = ast_cast<AltStmt>(Stmts[1]);
  EXPECT_EQ(O1->getCases()[0].Action.Out->getKind(), ExprKind::RecordLit);
  const auto *O2 = ast_cast<AltStmt>(Stmts[2]);
  EXPECT_EQ(O2->getCases()[0].Action.Out->getKind(), ExprKind::UnionLit);
}

TEST(Parser, AtAndCast) {
  std::unique_ptr<Program> Keep;
  const BlockStmt *Body = parseBody(
      "$id = @;\n$m: #array of int = #{ 2 -> 0 };\n$f = cast(m);", Keep);
  ASSERT_TRUE(Body);
  EXPECT_EQ(ast_cast<DeclStmt>(Body->getBody()[0])->getInit()->getKind(),
            ExprKind::SelfId);
  EXPECT_EQ(ast_cast<DeclStmt>(Body->getBody()[2])->getInit()->getKind(),
            ExprKind::Cast);
}

TEST(Parser, NegativeLiteralsInRecords) {
  std::unique_ptr<Program> Keep;
  Keep = parseOnly(R"(
type rT = record of { a: int, b: int }
channel c: rT
process p { out(c, { -1, -2 }); }
process q { in(c, { $a, $b }); }
)");
  ASSERT_TRUE(Keep);
}

TEST(Parser, UnionPatternVersusRecordPattern) {
  std::unique_ptr<Program> Keep;
  Keep = parseOnly(R"(
type uT = union of { a: int }
channel c: uT
channel d: int
process p {
  alt {
    case( in( c, { a |> $x })) { out(d, x); }
  }
}
)");
  ASSERT_TRUE(Keep);
  const auto *A = ast_cast<AltStmt>(Keep->Processes[0]->Body->getBody()[0]);
  EXPECT_EQ(A->getCases()[0].Action.Pat->getKind(), PatternKind::Union);
}

TEST(Parser, MissingSemicolonIsError) {
  expectParseError("channel c: int\nprocess p { $x = 1 }", "expected ';'");
}

TEST(Parser, RecoveryAfterBadStatementContinues) {
  // One bad statement must not hide the rest of the file from parsing.
  std::string Errors;
  auto Prog = parseOnly(R"(
channel c: int
process p { $x = ; }
process q { in(c, $v); }
)",
                        &Errors);
  EXPECT_EQ(Prog, nullptr); // Errors were reported...
  EXPECT_NE(Errors.find("expected an expression"), std::string::npos);
}

TEST(Parser, SourceLocationsPointAtOffendingToken) {
  std::string Errors;
  parseOnly("channel c: int\nprocess p {\n  $x = ;\n}\n", &Errors);
  // Line 3 is the bad statement.
  EXPECT_NE(Errors.find("parse.esp:3"), std::string::npos) << Errors;
}

} // namespace

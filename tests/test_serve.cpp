//===--- test_serve.cpp - Fleet serving runtime tests -----------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The serve subsystem's contracts: the bounded inbox (FIFO, cap,
// high-water), the log-linear latency histogram, deterministic golden
// totals on one worker, worker-count independence of the aggregate,
// backpressure, machine recycling (Machine::reset() replays
// bit-identically and reuses the heap arena), and the serve metrics and
// tracing surfaces.
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "runtime/Machine.h"
#include "serve/ExternalPort.h"
#include "serve/Latency.h"
#include "serve/LoadGen.h"
#include "serve/Serve.h"
#include "vmmc/ServeFirmware.h"

#include <gtest/gtest.h>

#include <array>
#include <deque>
#include <memory>
#include <vector>

using namespace esp;
using namespace esp::serve;

//===----------------------------------------------------------------------===//
// ExternalPort
//===----------------------------------------------------------------------===//

static ServeEvent ev(uint64_t Seq, uint32_t Size = 64) {
  ServeEvent E;
  E.Seq = Seq;
  E.VAddr = static_cast<uint32_t>(Seq * 4096);
  E.Size = Size;
  return E;
}

TEST(ServePort, FifoOrder) {
  ExternalPort P(8);
  ServeEvent Events[3] = {ev(1), ev(2), ev(3)};
  EXPECT_EQ(P.pushBatch(Events, 3), 3u);
  ServeEvent Out;
  ASSERT_TRUE(P.peek(Out));
  EXPECT_EQ(Out.Seq, 1u);
  P.popFront();
  ASSERT_TRUE(P.peek(Out));
  EXPECT_EQ(Out.Seq, 2u); // Peek does not consume; pop does.
  P.popFront();
  P.popFront();
  EXPECT_FALSE(P.peek(Out));
  EXPECT_TRUE(P.empty());
}

TEST(ServePort, CapBoundsAcceptance) {
  ExternalPort P(4);
  std::vector<ServeEvent> Events;
  for (uint64_t I = 0; I != 10; ++I)
    Events.push_back(ev(I));
  EXPECT_EQ(P.pushBatch(Events.data(), 10), 4u); // Prefix up to the cap.
  EXPECT_EQ(P.pushBatch(Events.data() + 4, 6), 0u); // Full: nothing.
  EXPECT_EQ(P.depth(), 4u);
  P.popFront();
  EXPECT_EQ(P.pushBatch(Events.data() + 4, 6), 1u); // One slot freed.
  // The accepted prefix preserved order across the partial pushes.
  ServeEvent Out;
  ASSERT_TRUE(P.peek(Out));
  EXPECT_EQ(Out.Seq, 1u);
  EXPECT_EQ(P.highWater(), 4u);
  EXPECT_LE(P.highWater(), P.capacity());
}

//===----------------------------------------------------------------------===//
// LatencyRecorder
//===----------------------------------------------------------------------===//

TEST(ServeLatency, BucketContinuity) {
  // bucketOf is monotone and gapless: each value maps to the same bucket
  // as its predecessor or the next one, and the bucket's lower edge
  // never exceeds the value.
  unsigned Prev = LatencyRecorder::bucketOf(0);
  EXPECT_EQ(Prev, 0u);
  uint64_t Probe = 1;
  for (unsigned Step = 0; Step != 4096; ++Step) {
    unsigned B = LatencyRecorder::bucketOf(Probe);
    EXPECT_GE(B, Prev);
    EXPECT_LE(B, Prev + 1);
    EXPECT_LE(LatencyRecorder::bucketLow(B), Probe);
    if (B > Prev) {
      EXPECT_EQ(LatencyRecorder::bucketLow(B), Probe);
    }
    Prev = B;
    ++Probe;
  }
  // Sparse sweep across the doubling ranges up to the top of uint64.
  for (uint64_t V = 4096; V > 2048; V <<= 1) {
    unsigned B = LatencyRecorder::bucketOf(V);
    EXPECT_LE(LatencyRecorder::bucketLow(B), V);
    EXPECT_LT(B, LatencyRecorder::kBucketCount);
    unsigned B2 = LatencyRecorder::bucketOf(V - 1);
    EXPECT_LE(B2, B);
  }
  EXPECT_LT(LatencyRecorder::bucketOf(UINT64_MAX),
            LatencyRecorder::kBucketCount);
}

TEST(ServeLatency, QuantilesWithinRelativeError) {
  LatencyRecorder L(4);
  // 1..100000 uniformly: pN must land within the bucketing's 1/32
  // relative error of N% of the range.
  for (uint64_t V = 1; V <= 100'000; ++V)
    L.record(static_cast<unsigned>(V % 4), V);
  EXPECT_EQ(L.count(), 100'000u);
  EXPECT_NEAR(double(L.quantile(0.50)), 50'000.0, 50'000.0 / 16);
  EXPECT_NEAR(double(L.quantile(0.99)), 99'000.0, 99'000.0 / 16);
  EXPECT_NEAR(double(L.quantile(0.999)), 99'900.0, 99'900.0 / 16);
  EXPECT_EQ(LatencyRecorder(1).quantile(0.5), 0u); // Empty: 0.
}

//===----------------------------------------------------------------------===//
// LoadGen
//===----------------------------------------------------------------------===//

TEST(ServeLoadGen, DeterministicAndInRange) {
  LoadGenOptions Opt;
  Opt.Seed = 7;
  Opt.Machines = 13;
  Opt.Requests = 1000;
  Opt.Batch = 8;
  LoadGen A(Opt), B(Opt);
  LoadRequest Ra, Rb;
  uint64_t MultiFrag = 0;
  for (uint64_t I = 0; I != Opt.Requests; ++I) {
    ASSERT_TRUE(A.next(Ra));
    ASSERT_TRUE(B.next(Rb));
    EXPECT_EQ(Ra.Machine, Rb.Machine);
    EXPECT_EQ(Ra.Ev.Seq, I);
    EXPECT_EQ(Ra.Ev.VAddr, Rb.Ev.VAddr);
    EXPECT_EQ(Ra.Ev.Size, Rb.Ev.Size);
    EXPECT_LT(Ra.Machine, Opt.Machines);
    EXPECT_GE(Ra.Ev.Size, 1u);
    EXPECT_LE(Ra.Ev.Size, 4 * vmmc::kServeMtu);
    if (Ra.Ev.Size > vmmc::kServeMtu)
      ++MultiFrag;
  }
  EXPECT_FALSE(A.next(Ra));
  EXPECT_GT(MultiFrag, 0u); // The distribution exercises fragmentation.

  ServeTotals T1 = LoadGen::expectedTotals(Opt);
  ServeTotals T2 = LoadGen::expectedTotals(Opt);
  EXPECT_EQ(T1.Responses, Opt.Requests);
  EXPECT_TRUE(T1 == T2);
  Opt.Seed = 8;
  EXPECT_TRUE(T1 != LoadGen::expectedTotals(Opt));
}

//===----------------------------------------------------------------------===//
// Fleet runs
//===----------------------------------------------------------------------===//

/// Pinned aggregate checksum for goldenOptions(1): seed 42, 64 machines,
/// 5000 requests, batch 8. Computed once from the deterministic stream;
/// a change means the load generator, the firmware, or the response
/// model changed behavior.
static constexpr uint64_t kGoldenChecksum = 2880485993664911262ULL;

static ServeOptions goldenOptions(unsigned Workers) {
  ServeOptions Opt;
  Opt.Machines = 64;
  Opt.Requests = 5'000;
  Opt.Workers = Workers;
  Opt.InboxCap = 32;
  Opt.Batch = 8;
  Opt.ConnRequests = 16; // Recycle under load: reset() on the hot path.
  Opt.Seed = 42;
  return Opt;
}

TEST(Serve, GoldenTotalsSingleWorker) {
  ServeResult R = runServe(goldenOptions(1));
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Totals.Responses, 5'000u);
  EXPECT_TRUE(R.Totals == R.Expected);
  EXPECT_GT(R.Resets, 0u);
  EXPECT_GT(R.Totals.Frags, R.Totals.Responses); // Multi-frag requests exist.
  // Golden aggregate: the load stream and the firmware's response are
  // both deterministic, so this checksum is a constant of the options
  // above. A change means the generator, the firmware, or the response
  // model moved — all three must move together.
  EXPECT_EQ(R.Totals.Checksum, LoadGen::expectedTotals([] {
              LoadGenOptions L;
              L.Seed = 42;
              L.Machines = 64;
              L.Requests = 5'000;
              L.Batch = 8;
              return L;
            }()).Checksum);
  EXPECT_EQ(R.Totals.Checksum, kGoldenChecksum);
}

TEST(Serve, WorkerCountIndependence) {
  ServeResult R1 = runServe(goldenOptions(1));
  ServeResult R4 = runServe(goldenOptions(4));
  ASSERT_TRUE(R1.Ok) << R1.Error;
  ASSERT_TRUE(R4.Ok) << R4.Error;
  EXPECT_TRUE(R1.Totals == R4.Totals);
  EXPECT_TRUE(R4.Totals == R4.Expected);
}

TEST(Serve, BackpressureNeverExceedsInboxCap) {
  ServeOptions Opt;
  Opt.Machines = 2; // Tiny fleet, deep per-machine backlog.
  Opt.Requests = 2'000;
  Opt.Workers = 2;
  Opt.InboxCap = 4;
  Opt.Batch = 4;
  Opt.Seed = 3;
  ServeResult R = runServe(Opt);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_LE(R.InboxHighWater, Opt.InboxCap);
  EXPECT_GT(R.InboxHighWater, 0u);
}

TEST(Serve, MetricsSurface) {
  obs::MetricsRegistry Metrics;
  ServeOptions Opt = goldenOptions(2);
  Opt.Metrics = &Metrics;
  ServeResult R = runServe(Opt);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(Metrics.counter("serve.responses").value(), 5'000u);
  EXPECT_EQ(Metrics.counter("serve.requests").value(), 5'000u);
  EXPECT_EQ(Metrics.counter("serve.resets").value(), R.Resets);
  // Per-machine live-heap high watermark: at least one final sample per
  // machine, plus one per recycle.
  obs::Histogram &HW = Metrics.histogram("serve.machine_heap_highwater");
  EXPECT_GE(HW.count(), Opt.Machines);
  EXPECT_GE(HW.count(), R.Resets + Opt.Machines);
  EXPECT_GT(R.HeapHighWaterMax, 0u);
}

TEST(Serve, TraceSmoke) {
  obs::TraceWriter Trace;
  ServeOptions Opt;
  Opt.Machines = 4;
  Opt.Requests = 100;
  Opt.Workers = 1;
  Opt.Trace = &Trace;
  Opt.TraceMachines = 2;
  ServeResult R = runServe(Opt);
  ASSERT_TRUE(R.Ok) << R.Error;
  Trace.finish(0);
  EXPECT_GT(Trace.eventCount(), 0u);
  std::string Json = Trace.json();
  EXPECT_NE(Json.find("machine0"), std::string::npos);
  EXPECT_NE(Json.find("machine1"), std::string::npos);
  EXPECT_EQ(Json.find("machine2"), std::string::npos); // Only 2 tracked.
}

//===----------------------------------------------------------------------===//
// Machine recycling (reset)
//===----------------------------------------------------------------------===//

namespace {

/// Scripted request source for a single machine (same interface contract
/// as the serve runtime's inbox-backed writer).
class ScriptedReq : public ExternalWriter {
public:
  std::deque<std::array<int64_t, 3>> Events; // seq, vAddr, size

  int isReady() override { return Events.empty() ? 0 : 1; }
  void produce(int, Heap &, std::vector<Value> &Out) override {
    Out.push_back(Value::makeInt(Events.front()[0]));
    Out.push_back(Value::makeInt(Events.front()[1]));
    Out.push_back(Value::makeInt(Events.front()[2]));
  }
  void accepted(int) override { Events.pop_front(); }
};

class CollectResp : public ExternalReader {
public:
  std::vector<std::array<int64_t, 4>> Got; // seq, frags, bytes, sum

  bool isReady() override { return true; }
  void consume(int, Heap &, const std::vector<Value> &Args) override {
    Got.push_back({Args[0].Scalar, Args[1].Scalar, Args[2].Scalar,
                   Args[3].Scalar});
  }
};

/// One compilation shared by every machine in a test — exactly the serve
/// runtime's structure, and required for serializeState comparisons
/// across machines (canonical state includes type identities, which are
/// per-compilation).
struct SharedFirmware {
  std::unique_ptr<vmmc::ServeProgram> FW = vmmc::compileServeFirmware();
  std::shared_ptr<const CompiledProgram> Compiled =
      Machine::compileProgram(FW->Module);
};

struct ServeMachine {
  std::unique_ptr<Machine> M;
  ScriptedReq *Req = nullptr;
  CollectResp *Resp = nullptr;

  explicit ServeMachine(const SharedFirmware &Shared) {
    M = std::make_unique<Machine>(Shared.FW->Module, MachineOptions(),
                                  Shared.Compiled);
    auto R = std::make_unique<ScriptedReq>();
    auto C = std::make_unique<CollectResp>();
    Req = R.get();
    Resp = C.get();
    M->bindWriter("Req", std::move(R));
    M->bindReader("Resp", std::move(C));
  }

  /// Feeds \p Load, drains to quiescence, returns the canonical state.
  std::string drive(const std::deque<std::array<int64_t, 3>> &Load) {
    Req->Events = Load;
    StepResult R = M->run();
    EXPECT_EQ(R, StepResult::Quiescent);
    EXPECT_FALSE(M->error()) << M->error().Message;
    return M->serializeState();
  }
};

std::deque<std::array<int64_t, 3>> loadA() {
  return {{0, 0, 64},
          {1, 4096, 4096},
          {2, 8192 + 100, 10'000}, // Multi-fragment, unaligned.
          {3, 12'288, 1},
          {4, 40'960, 8192}};
}

std::deque<std::array<int64_t, 3>> loadB() {
  return {{7, 4096 * 9, 300}, {8, 123, 5000}, {9, 4096 * 3 + 5, 12'000}};
}

bool statsEqual(const ExecStats &A, const ExecStats &B) {
  return A.Instructions == B.Instructions &&
         A.ContextSwitches == B.ContextSwitches &&
         A.Rendezvous == B.Rendezvous &&
         A.ExternalDeliveries == B.ExternalDeliveries &&
         A.ExternalConsumes == B.ExternalConsumes &&
         A.PatternMatchesTried == B.PatternMatchesTried;
}

} // namespace

TEST(ServeReset, ResetMachineReplaysBitIdentically) {
  SharedFirmware Shared;
  ServeMachine Fresh(Shared);
  Fresh.M->start();
  std::string FreshState = Fresh.drive(loadA());
  ExecStats FreshStats = Fresh.M->stats();
  auto FreshGot = Fresh.Resp->Got;
  ASSERT_EQ(FreshGot.size(), loadA().size());

  // Second machine: serve a different connection first, then recycle.
  ServeMachine Recycled(Shared);
  Recycled.M->start();
  std::string Dirty = Recycled.drive(loadB());
  EXPECT_NE(Dirty, FreshState);
  Recycled.M->reset();
  Recycled.M->start();
  Recycled.Resp->Got.clear();
  std::string ReplayState = Recycled.drive(loadA());
  EXPECT_EQ(ReplayState, FreshState); // Bit-identical canonical state.
  EXPECT_TRUE(statsEqual(Recycled.M->stats(), FreshStats));
  EXPECT_EQ(Recycled.Resp->Got, FreshGot);

  // And the responses match the pure model the load generator uses.
  for (const auto &Got : FreshGot) {
    auto Load = loadA();
    const auto &In = Load[&Got - FreshGot.data()];
    vmmc::ServeResponseModel Model = vmmc::serveResponseModel(
        static_cast<uint64_t>(In[0]), static_cast<uint32_t>(In[1]),
        static_cast<uint32_t>(In[2]));
    EXPECT_EQ(static_cast<uint64_t>(Got[0]), Model.Seq);
    EXPECT_EQ(static_cast<uint64_t>(Got[1]), Model.Frags);
    EXPECT_EQ(static_cast<uint64_t>(Got[2]), Model.Bytes);
    EXPECT_EQ(static_cast<uint64_t>(Got[3]), Model.Sum);
  }
}

TEST(ServeReset, HeapArenaIsReused) {
  SharedFirmware Shared;
  ServeMachine SM(Shared);
  SM.M->start();
  SM.drive(loadA());
  size_t TableAfterFirst = SM.M->heap().objects().size();
  uint64_t AllocsFirst = SM.M->heap().getTotalAllocations();
  EXPECT_GT(SM.M->heap().getHighWater(), 0u);

  for (int Round = 0; Round != 3; ++Round) {
    SM.M->reset();
    EXPECT_EQ(SM.M->heap().getLiveCount(), 0u);
    EXPECT_EQ(SM.M->heap().getHighWater(), 0u);
    SM.M->start();
    SM.drive(loadA());
    // Arena reuse: the same replay allocates from recycled slots; the
    // object table never grows across recycles.
    EXPECT_EQ(SM.M->heap().objects().size(), TableAfterFirst);
    EXPECT_EQ(SM.M->heap().getTotalAllocations(), AllocsFirst);
  }
}

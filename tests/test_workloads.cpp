//===--- test_workloads.cpp - Workload-level property tests --------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// Cross-firmware properties of the Figure 5 workloads: delivery
// counting, latency/bandwidth monotonicity in message size, the
// small-message and page-size discontinuities, and piggyback-ack
// behavior. These pin the *shape* invariants that EXPERIMENTS.md
// reports, independent of the calibrated constants.
//
//===----------------------------------------------------------------------===//

#include "vmmc/Workloads.h"

#include <gtest/gtest.h>

using namespace esp;
using namespace esp::vmmc;

namespace {

class WorkloadShape : public ::testing::TestWithParam<FirmwareKind> {};

INSTANTIATE_TEST_SUITE_P(
    Kinds, WorkloadShape,
    ::testing::Values(FirmwareKind::Esp, FirmwareKind::Orig,
                      FirmwareKind::OrigNoFastPaths),
    [](const ::testing::TestParamInfo<FirmwareKind> &Info) {
      return std::string(firmwareKindName(Info.param));
    });

TEST_P(WorkloadShape, LatencyIsMonotonicInMessageSize) {
  double Prev = 0;
  for (uint32_t Size : {16u, 256u, 4096u}) {
    WorkloadResult R = runPingpong(GetParam(), Size, 8);
    ASSERT_TRUE(R.Completed);
    EXPECT_GT(R.OneWayLatencyUs, Prev)
        << "latency not monotonic at size " << Size;
    Prev = R.OneWayLatencyUs;
  }
}

TEST_P(WorkloadShape, BandwidthIsMonotonicInMessageSize) {
  double Prev = 0;
  for (uint32_t Size : {64u, 1024u, 16384u}) {
    WorkloadResult R = runOneWay(GetParam(), Size, 16);
    ASSERT_TRUE(R.Completed);
    EXPECT_GT(R.BandwidthMBs, Prev)
        << "bandwidth not monotonic at size " << Size;
    Prev = R.BandwidthMBs;
  }
}

TEST_P(WorkloadShape, SmallMessageBoundaryIsADiscontinuity) {
  // 32 B (inlined, no fetch DMA) must be meaningfully cheaper than 64 B
  // (full DMA path) — the paper's 32/64 discontinuity, in every curve.
  WorkloadResult At32 = runPingpong(GetParam(), 32, 8);
  WorkloadResult At64 = runPingpong(GetParam(), 64, 8);
  ASSERT_TRUE(At32.Completed && At64.Completed);
  EXPECT_GT(At64.OneWayLatencyUs, At32.OneWayLatencyUs * 1.15)
      << "expected a jump across the small-message boundary";
}

TEST_P(WorkloadShape, PageBoundarySplitsMessages) {
  // An 8 KB message is two MTU packets; 4 KB is one. Per-message packet
  // counts must reflect the split (acks included, so compare deltas).
  WorkloadResult OnePacket = runOneWay(GetParam(), 4096, 8);
  WorkloadResult TwoPackets = runOneWay(GetParam(), 8192, 8);
  ASSERT_TRUE(OnePacket.Completed && TwoPackets.Completed);
  EXPECT_GT(TwoPackets.PacketsSent, OnePacket.PacketsSent);
}

TEST_P(WorkloadShape, BidirectionalUsesPiggybackAcks) {
  // With reverse data flowing, acks piggyback: the bidirectional run
  // moves 2x the payload of the one-way run but needs fewer than 2x the
  // packets of the one-way run (which pays explicit acks).
  WorkloadResult OneWay = runOneWay(GetParam(), 1024, 24);
  WorkloadResult Bidir = runBidirectional(GetParam(), 1024, 24);
  ASSERT_TRUE(OneWay.Completed && Bidir.Completed);
  EXPECT_LT(Bidir.PacketsSent, 2 * OneWay.PacketsSent);
}

TEST_P(WorkloadShape, DeliveryCountsAreExact) {
  WorkloadResult R = runOneWay(GetParam(), 512, 20);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.MessagesDelivered, 20u);
}

TEST_P(WorkloadShape, HeavierLossStillDeliversEverything) {
  WorkloadResult R = runLossyPingpong(GetParam(), 128, 5, /*DropEveryN=*/2);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.MessagesDelivered, 10u);
}

TEST(WorkloadShape2, FirmwareCyclesScaleWithTraffic) {
  WorkloadResult Few = runOneWay(FirmwareKind::Esp, 1024, 8);
  WorkloadResult Many = runOneWay(FirmwareKind::Esp, 1024, 32);
  ASSERT_TRUE(Few.Completed && Many.Completed);
  EXPECT_GT(Many.FirmwareCyclesNode0, Few.FirmwareCyclesNode0 * 2);
}

TEST(WorkloadShape2, NoFastPathNeverBeatsFastPath) {
  for (uint32_t Size : {4u, 64u, 1024u}) {
    WorkloadResult Fast = runPingpong(FirmwareKind::Orig, Size, 8);
    WorkloadResult Slow = runPingpong(FirmwareKind::OrigNoFastPaths, Size, 8);
    ASSERT_TRUE(Fast.Completed && Slow.Completed);
    EXPECT_LE(Fast.OneWayLatencyUs, Slow.OneWayLatencyUs * 1.01)
        << "at size " << Size;
  }
}

} // namespace

//===--- TestHelpers.h - Shared test fixtures -------------------*- C++ -*-==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the test suite: compile ESP source through the whole
/// frontend and lowering pipeline, with assertions on diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef ESP_TESTS_TESTHELPERS_H
#define ESP_TESTS_TESTHELPERS_H

#include "driver/Driver.h"
#include "frontend/Parser.h"
#include "frontend/Sema.h"
#include "ir/IR.h"
#include "ir/Passes.h"
#include "runtime/Machine.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace esp {
namespace test {

/// Owns the full compilation pipeline state for one ESP source.
struct Compilation {
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<Program> Prog;
  ModuleIR Module;

  Compilation() { Diags = std::make_unique<DiagnosticEngine>(SM); }
};

/// Parses and checks \p Source; expects success. Lowered IR is in
/// Module (unoptimized unless \p Options given).
inline std::unique_ptr<Compilation>
compile(const std::string &Source,
        const OptOptions *Options = nullptr) {
  auto C = std::make_unique<Compilation>();
  CompileOptions Opts;
  if (Options) {
    Opts.Optimize = true;
    Opts.Opt = *Options;
  }
  CompileResult R =
      compileBuffer(C->SM, *C->Diags, "test.esp", Source, Opts);
  if (!R.Success) {
    ADD_FAILURE() << "compile failed:\n" << C->Diags->renderAll();
    return nullptr;
  }
  C->Prog = std::move(R.Prog);
  C->Module = Options ? std::move(R.Optimized) : std::move(R.Module);
  return C;
}

/// Parses and checks \p Source; expects a semantic or parse error whose
/// message contains \p ExpectedFragment.
inline void expectDiagnostic(const std::string &Source,
                             const std::string &ExpectedFragment) {
  Compilation C;
  C.Prog = Parser::parse(C.SM, *C.Diags, "test.esp", Source);
  if (C.Prog)
    checkProgram(*C.Prog, *C.Diags);
  EXPECT_TRUE(C.Diags->getNumErrors() > 0 || C.Diags->getNumWarnings() > 0)
      << "expected a diagnostic containing '" << ExpectedFragment << "'";
  EXPECT_TRUE(C.Diags->containsMessage(ExpectedFragment))
      << "diagnostics were:\n"
      << C.Diags->renderAll();
}

} // namespace test
} // namespace esp

#endif // ESP_TESTS_TESTHELPERS_H

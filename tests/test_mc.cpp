//===--- test_mc.cpp - Model checker tests ----------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mc/SafetyHarness.h"
#include "TestHelpers.h"

using namespace esp;
using namespace esp::test;

namespace {

TEST(ModelChecker, TerminatingProgramVerifiesClean) {
  auto C = compile(R"(
channel c: int
process a { $i = 0; while (i < 3) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 3) { in(c, $x); assert(x == i); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
  EXPECT_GT(R.StatesExplored, 0u);
}

TEST(ModelChecker, FindsAssertionViolationInSomeInterleaving) {
  // The assertion only fails when p1 wins the race for the server; a
  // depth-first scheduler could easily miss it, the checker must not.
  auto C = compile(R"(
channel req: record of { ret: int }
channel reply: record of { ret: int, v: int }
process p1 { out(req, { @ }); in(reply, { @, $v }); }
process p2 { out(req, { @ }); in(reply, { @, $v }); assert(false); }
process server {
  $n = 0;
  while (n < 2) { in(req, { $who }); out(reply, { who, 1 }); n = n + 1; }
}
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::AssertFailed);
  EXPECT_FALSE(R.Trace.empty());
}

TEST(ModelChecker, DetectsDeadlock) {
  // Classic cross-coupled rendezvous deadlock.
  auto C = compile(R"(
channel c1: int
channel c2: int
process a { out(c1, 1); in(c2, $x); }
process b { out(c2, 2); in(c1, $y); }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_TRUE(R.Deadlock);
}

TEST(ModelChecker, NoFalseDeadlockOnGuardedAlt) {
  auto C = compile(R"(
channel c1: int
channel c2: int
process buf {
  $have = false; $v = 0;
  while (true) {
    alt {
      case( !have, in( c1, $x)) { v = x; have = true; }
      case( have, out( c2, v)) { have = false; }
    }
  }
}
process a { $i = 0; while (i < 4) { out(c1, i); i = i + 1; } }
process b { $i = 0; while (i < 4) { in(c2, $x); assert(x == i); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McOptions O = Options;
  McResult R = checkModel(C->Module, O);
  // buf loops forever and ends blocked with no counterpart: that IS a
  // terminal state with a blocked process, i.e. reported as deadlock.
  // Restrict the check: no assertion/memory violation may be found.
  if (R.Verdict == McVerdict::Violation) {
    EXPECT_TRUE(R.Deadlock) << R.report();
  }
}

TEST(ModelChecker, DetectsUseAfterFreeRace) {
  // Process q frees its own reference then reads: a local memory bug.
  auto C = compile(R"(
channel c: array of int
process p {
  $data: array of int = { 4 -> 7 };
  out(c, data);
  unlink(data);
}
process q {
  in(c, $d);
  unlink(d);
  assert(d[0] == 7);
}
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::UseAfterFree);
}

TEST(ModelChecker, DetectsLeak) {
  // The receiver never unlinks what it binds: the object leaks when the
  // binding is overwritten on the next loop iteration.
  auto C = compile(R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 3) {
    $data: array of int = { 2 -> 1 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 3) { in(c, $d); i = i + 1; }
}
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_GT(R.LeakedObjects, 0u);
}

TEST(ModelChecker, CleanRefcountingVerifiesNoLeak) {
  auto C = compile(R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 3) {
    $data: array of int = { 2 -> 1 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 3) { in(c, $d); unlink(d); i = i + 1; }
}
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
}

TEST(ModelChecker, BitStateModeFindsSeededBug) {
  auto C = compile(R"(
channel c: int
process a { $i = 0; while (i < 8) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 8) { in(c, $x); assert(x < 7); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Mode = SearchMode::BitState;
  Options.BitStateBits = 16;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::AssertFailed);
}

TEST(ModelChecker, SimulationModeFindsShallowBug) {
  auto C = compile(R"(
channel c: int
process a { out(c, 1); }
process b { in(c, $x); assert(x == 0); }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Mode = SearchMode::Simulation;
  Options.SimulationRuns = 8;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
}

TEST(ModelChecker, StateCountsAreDeterministic) {
  auto C = compile(R"(
channel c: int
process a { $i = 0; while (i < 4) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 4) { in(c, $x); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R1 = checkModel(C->Module, Options);
  McResult R2 = checkModel(C->Module, Options);
  EXPECT_EQ(R1.StatesExplored, R2.StatesExplored);
  EXPECT_EQ(R1.StatesStored, R2.StatesStored);
  EXPECT_EQ(R1.Transitions, R2.Transitions);
}

//===----------------------------------------------------------------------===//
// Per-process memory-safety harness (§5.3)
//===----------------------------------------------------------------------===//

/// The paper's pageTable process (Appendix B), with correct refcounting.
const char *PageTableSource = R"(
const TABLE_SIZE = 2;
type updateT = record of { vAddr: int, pAddr: int }
type userT = union of { update: updateT }
channel ptReqC: record of { ret: int, vAddr: int }
channel ptReplyC: record of { ret: int, pAddr: int }
channel userReqC: userT
process pageTable {
  $table: #array of int = #{ TABLE_SIZE -> 0 };
  while (true) {
    alt {
      case( in( ptReqC, { $ret, $vAddr})) {
        out( ptReplyC, { ret, table[vAddr % TABLE_SIZE]});
      }
      case( in( userReqC, { update |> { $vAddr, $pAddr}})) {
        table[vAddr % TABLE_SIZE] = pAddr;
      }
    }
  }
}
)";

TEST(SafetyHarness, PageTableIsMemorySafe) {
  auto C = compile(PageTableSource);
  ASSERT_TRUE(C);
  SafetyOptions Options;
  Options.IntDomain = {0, 1};
  McResult R = verifyProcessMemorySafety(*C->Prog, "pageTable", Options);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
  EXPECT_GT(R.StatesExplored, 1u);
}

TEST(SafetyHarness, DetectsInjectedUseAfterFree) {
  // A process that unlinks the received object and then touches it.
  auto C = compile(R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
channel d: int
process buggy {
  while (true) {
    in(c, { $v, $data });
    unlink(data);
    out(d, data[0]);
  }
}
)");
  ASSERT_TRUE(C);
  SafetyOptions Options;
  McResult R = verifyProcessMemorySafety(*C->Prog, "buggy", Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::UseAfterFree);
}

TEST(SafetyHarness, DetectsInjectedLeak) {
  // Never unlinks what it receives.
  auto C = compile(R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
process leaky {
  while (true) {
    in(c, { $v, $data });
  }
}
)");
  ASSERT_TRUE(C);
  SafetyOptions Options;
  McResult R = verifyProcessMemorySafety(*C->Prog, "leaky", Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
}

TEST(SafetyHarness, CorrectConsumerVerifiesClean) {
  auto C = compile(R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
channel d: int
process ok {
  while (true) {
    in(c, { $v, $data });
    out(d, data[0] + v);
    unlink(data);
  }
}
)");
  ASSERT_TRUE(C);
  SafetyOptions Options;
  McResult R = verifyProcessMemorySafety(*C->Prog, "ok", Options);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
}

} // namespace

//===--- test_mc.cpp - Model checker tests ----------------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "mc/SafetyHarness.h"
#include "TestHelpers.h"

using namespace esp;
using namespace esp::test;

namespace {

TEST(ModelChecker, TerminatingProgramVerifiesClean) {
  auto C = compile(R"(
channel c: int
process a { $i = 0; while (i < 3) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 3) { in(c, $x); assert(x == i); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
  EXPECT_GT(R.StatesExplored, 0u);
}

TEST(ModelChecker, FindsAssertionViolationInSomeInterleaving) {
  // The assertion only fails when p1 wins the race for the server; a
  // depth-first scheduler could easily miss it, the checker must not.
  auto C = compile(R"(
channel req: record of { ret: int }
channel reply: record of { ret: int, v: int }
process p1 { out(req, { @ }); in(reply, { @, $v }); }
process p2 { out(req, { @ }); in(reply, { @, $v }); assert(false); }
process server {
  $n = 0;
  while (n < 2) { in(req, { $who }); out(reply, { who, 1 }); n = n + 1; }
}
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::AssertFailed);
  EXPECT_FALSE(R.Trace.empty());
}

TEST(ModelChecker, DetectsDeadlock) {
  // Classic cross-coupled rendezvous deadlock.
  auto C = compile(R"(
channel c1: int
channel c2: int
process a { out(c1, 1); in(c2, $x); }
process b { out(c2, 2); in(c1, $y); }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_TRUE(R.Deadlock);
}

TEST(ModelChecker, NoFalseDeadlockOnGuardedAlt) {
  auto C = compile(R"(
channel c1: int
channel c2: int
process buf {
  $have = false; $v = 0;
  while (true) {
    alt {
      case( !have, in( c1, $x)) { v = x; have = true; }
      case( have, out( c2, v)) { have = false; }
    }
  }
}
process a { $i = 0; while (i < 4) { out(c1, i); i = i + 1; } }
process b { $i = 0; while (i < 4) { in(c2, $x); assert(x == i); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McOptions O = Options;
  McResult R = checkModel(C->Module, O);
  // buf loops forever and ends blocked with no counterpart: that IS a
  // terminal state with a blocked process, i.e. reported as deadlock.
  // Restrict the check: no assertion/memory violation may be found.
  if (R.Verdict == McVerdict::Violation) {
    EXPECT_TRUE(R.Deadlock) << R.report();
  }
}

TEST(ModelChecker, DetectsUseAfterFreeRace) {
  // Process q frees its own reference then reads: a local memory bug.
  auto C = compile(R"(
channel c: array of int
process p {
  $data: array of int = { 4 -> 7 };
  out(c, data);
  unlink(data);
}
process q {
  in(c, $d);
  unlink(d);
  assert(d[0] == 7);
}
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::UseAfterFree);
}

TEST(ModelChecker, DetectsLeak) {
  // The receiver never unlinks what it binds: the object leaks when the
  // binding is overwritten on the next loop iteration.
  auto C = compile(R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 3) {
    $data: array of int = { 2 -> 1 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 3) { in(c, $d); i = i + 1; }
}
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_GT(R.LeakedObjects, 0u);
}

TEST(ModelChecker, CleanRefcountingVerifiesNoLeak) {
  auto C = compile(R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 3) {
    $data: array of int = { 2 -> 1 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 3) { in(c, $d); unlink(d); i = i + 1; }
}
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
}

TEST(ModelChecker, BitStateModeFindsSeededBug) {
  auto C = compile(R"(
channel c: int
process a { $i = 0; while (i < 8) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 8) { in(c, $x); assert(x < 7); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Mode = SearchMode::BitState;
  Options.BitStateBits = 16;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::AssertFailed);
}

TEST(ModelChecker, SimulationModeFindsShallowBug) {
  auto C = compile(R"(
channel c: int
process a { out(c, 1); }
process b { in(c, $x); assert(x == 0); }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Mode = SearchMode::Simulation;
  Options.SimulationRuns = 8;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
}

//===----------------------------------------------------------------------===//
// Verdict and trace regressions
//===----------------------------------------------------------------------===//

TEST(ModelChecker, TraceDoesNotDuplicateFinalMove) {
  // Deadlock exactly one move deep: the violation surfaces after
  // enumerating the successor's moves — the path that used to push the
  // final move twice (once via the frame label, once explicitly).
  auto C = compile(R"(
channel go: int
channel c1: int
channel c2: int
process a { out(go, 1); out(c1, 1); in(c2, $x); }
process b { in(go, $g); out(c2, 2); in(c1, $y); }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_TRUE(R.Deadlock);
  ASSERT_EQ(R.Trace.size(), 1u) << R.report();
  ASSERT_EQ(R.TraceMoves.size(), 1u);
  EXPECT_TRUE(replayTrace(C->Module, Options, R));
}

TEST(ModelChecker, EveryCounterexampleReplays) {
  // Each violating model's reported trace must actually replay to the
  // reported violation: every move enabled in sequence, final state
  // exhibiting the error/deadlock/leak.
  const char *Violating[] = {
      // Assertion race.
      R"(
channel req: record of { ret: int }
channel reply: record of { ret: int, v: int }
process p1 { out(req, { @ }); in(reply, { @, $v }); }
process p2 { out(req, { @ }); in(reply, { @, $v }); assert(false); }
process server {
  $n = 0;
  while (n < 2) { in(req, { $who }); out(reply, { who, 1 }); n = n + 1; }
}
)",
      // Deadlock.
      R"(
channel go: int
channel c1: int
channel c2: int
process a { out(go, 1); out(c1, 1); in(c2, $x); }
process b { in(go, $g); out(c2, 2); in(c1, $y); }
)",
      // Use after free.
      R"(
channel c: array of int
process p {
  $data: array of int = { 4 -> 7 };
  out(c, data);
  unlink(data);
}
process q {
  in(c, $d);
  unlink(d);
  assert(d[0] == 7);
}
)",
      // Leak.
      R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 3) {
    $data: array of int = { 2 -> 1 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 3) { in(c, $d); i = i + 1; }
}
)",
  };
  for (const char *Source : Violating) {
    auto C = compile(Source);
    ASSERT_TRUE(C);
    McOptions Options;
    McResult R = checkModel(C->Module, Options);
    ASSERT_EQ(R.Verdict, McVerdict::Violation) << R.report();
    EXPECT_EQ(R.Trace.size(), R.TraceMoves.size());
    EXPECT_TRUE(replayTrace(C->Module, Options, R))
        << "trace does not replay:\n"
        << R.report();
  }
}

TEST(ModelChecker, DepthTruncationDowngradesToPartialOK) {
  // The assertion bug needs 8 rendezvous; a depth bound of 4 hides it,
  // and a truncated search must not claim a full proof.
  auto C = compile(R"(
channel c: int
process a { $i = 0; while (i < 8) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 8) { in(c, $x); assert(x < 7); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Shallow;
  Shallow.MaxDepth = 4;
  McResult R = checkModel(C->Module, Shallow);
  EXPECT_EQ(R.Verdict, McVerdict::PartialOK) << R.report();
  EXPECT_TRUE(R.DepthTruncated);
  EXPECT_NE(R.report().find("max search depth too small"), std::string::npos);
  // The same search without the bound finds the violation.
  McOptions Full;
  McResult R2 = checkModel(C->Module, Full);
  EXPECT_EQ(R2.Verdict, McVerdict::Violation) << R2.report();
  // A genuinely complete search still reports OK.
  McOptions Deep;
  Deep.MaxDepth = 100;
  auto Clean = compile(R"(
channel c: int
process a { $i = 0; while (i < 3) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 3) { in(c, $x); i = i + 1; } }
)");
  ASSERT_TRUE(Clean);
  McResult R3 = checkModel(Clean->Module, Deep);
  EXPECT_EQ(R3.Verdict, McVerdict::OK) << R3.report();
  EXPECT_FALSE(R3.DepthTruncated);
}

TEST(ModelChecker, BitStateBitsExtremesAreClamped) {
  // --bits 2 used to allocate a 0-byte table and write out of bounds;
  // --bits 64 used to shift by the full word width (UB). Both must be
  // clamped to the valid range and still find the seeded bug.
  EXPECT_EQ(clampedBitStateBits(2), MinBitStateBits);
  EXPECT_EQ(clampedBitStateBits(64), MaxBitStateBits);
  EXPECT_EQ(clampedBitStateBits(24), 24u);
  auto C = compile(R"(
channel c: int
process a { $i = 0; while (i < 8) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 8) { in(c, $x); assert(x < 7); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  for (unsigned Bits : {2u, 64u}) {
    McOptions Options;
    Options.Mode = SearchMode::BitState;
    Options.BitStateBits = Bits;
    McResult R = checkModel(C->Module, Options);
    EXPECT_EQ(R.Verdict, McVerdict::Violation)
        << "bits=" << Bits << "\n"
        << R.report();
    EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::AssertFailed);
  }
}

//===----------------------------------------------------------------------===//
// Visited-set / compression mode agreement
//===----------------------------------------------------------------------===//

TEST(ModelChecker, VisitedModesAgreeOnVerdictsAndCounts) {
  const char *Models[] = {
      // Clean terminating.
      R"(
channel c: int
process a { $i = 0; while (i < 4) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 4) { in(c, $x); assert(x == i); i = i + 1; } }
)",
      // Assertion race.
      R"(
channel req: record of { ret: int }
channel reply: record of { ret: int, v: int }
process p1 { out(req, { @ }); in(reply, { @, $v }); }
process p2 { out(req, { @ }); in(reply, { @, $v }); assert(false); }
process server {
  $n = 0;
  while (n < 2) { in(req, { $who }); out(reply, { who, 1 }); n = n + 1; }
}
)",
      // Heap traffic, clean.
      R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 3) {
    $data: array of int = { 2 -> 1 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 3) { in(c, $d); unlink(d); i = i + 1; }
}
)",
      // Use after free.
      R"(
channel c: array of int
process p {
  $data: array of int = { 4 -> 7 };
  out(c, data);
  unlink(data);
}
process q {
  in(c, $d);
  unlink(d);
  assert(d[0] == 7);
}
)",
  };
  for (const char *Source : Models) {
    auto C = compile(Source);
    ASSERT_TRUE(C);
    McOptions Base;
    Base.Visited = VisitedKind::Exact;
    Base.Collapse = false;
    McResult Reference = checkModel(C->Module, Base);

    struct Config {
      const char *Name;
      VisitedKind Visited;
      bool Collapse;
    } Configs[] = {
        {"exact+collapse", VisitedKind::Exact, true},
        {"hash64", VisitedKind::Hash64, true},
        {"hash128", VisitedKind::Hash128, true},
    };
    for (const Config &Cfg : Configs) {
      McOptions Options;
      Options.Visited = Cfg.Visited;
      Options.Collapse = Cfg.Collapse;
      McResult R = checkModel(C->Module, Options);
      EXPECT_EQ(R.Verdict, Reference.Verdict) << Cfg.Name;
      EXPECT_EQ(R.StatesExplored, Reference.StatesExplored) << Cfg.Name;
      EXPECT_EQ(R.StatesStored, Reference.StatesStored) << Cfg.Name;
      EXPECT_EQ(R.Transitions, Reference.Transitions) << Cfg.Name;
      EXPECT_EQ(R.Trace, Reference.Trace) << Cfg.Name;
    }
  }
}

TEST(ModelChecker, SnapshotStrideDoesNotChangeExploration) {
  // The snapshot-free DFS re-derives states by checkpoint + replay; the
  // exploration must be byte-identical for every stride.
  auto C = compile(R"(
channel c: array of int
channel d: int
process p {
  $i = 0;
  while (i < 4) {
    $data: array of int = { 2 -> 5 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 4) { in(c, $x); out(d, x[0]); unlink(x); i = i + 1; }
}
process r {
  $i = 0;
  while (i < 4) { in(d, $v); assert(v == 5); i = i + 1; }
}
)");
  ASSERT_TRUE(C);
  McOptions Base;
  Base.SnapshotStride = 1;
  McResult Reference = checkModel(C->Module, Base);
  EXPECT_EQ(Reference.Verdict, McVerdict::OK) << Reference.report();
  for (unsigned Stride : {2u, 4u, 16u, 64u}) {
    McOptions Options;
    Options.SnapshotStride = Stride;
    McResult R = checkModel(C->Module, Options);
    EXPECT_EQ(R.Verdict, Reference.Verdict) << "stride=" << Stride;
    EXPECT_EQ(R.StatesExplored, Reference.StatesExplored)
        << "stride=" << Stride;
    EXPECT_EQ(R.StatesStored, Reference.StatesStored) << "stride=" << Stride;
    EXPECT_EQ(R.Transitions, Reference.Transitions) << "stride=" << Stride;
  }
}

TEST(ModelChecker, StateCountsAreDeterministic) {
  auto C = compile(R"(
channel c: int
process a { $i = 0; while (i < 4) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 4) { in(c, $x); i = i + 1; } }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  McResult R1 = checkModel(C->Module, Options);
  McResult R2 = checkModel(C->Module, Options);
  EXPECT_EQ(R1.StatesExplored, R2.StatesExplored);
  EXPECT_EQ(R1.StatesStored, R2.StatesStored);
  EXPECT_EQ(R1.Transitions, R2.Transitions);
}

//===----------------------------------------------------------------------===//
// Per-process memory-safety harness (§5.3)
//===----------------------------------------------------------------------===//

/// The paper's pageTable process (Appendix B), with correct refcounting.
const char *PageTableSource = R"(
const TABLE_SIZE = 2;
type updateT = record of { vAddr: int, pAddr: int }
type userT = union of { update: updateT }
channel ptReqC: record of { ret: int, vAddr: int }
channel ptReplyC: record of { ret: int, pAddr: int }
channel userReqC: userT
process pageTable {
  $table: #array of int = #{ TABLE_SIZE -> 0 };
  while (true) {
    alt {
      case( in( ptReqC, { $ret, $vAddr})) {
        out( ptReplyC, { ret, table[vAddr % TABLE_SIZE]});
      }
      case( in( userReqC, { update |> { $vAddr, $pAddr}})) {
        table[vAddr % TABLE_SIZE] = pAddr;
      }
    }
  }
}
)";

TEST(SafetyHarness, PageTableIsMemorySafe) {
  auto C = compile(PageTableSource);
  ASSERT_TRUE(C);
  SafetyOptions Options;
  Options.IntDomain = {0, 1};
  McResult R = verifyProcessMemorySafety(*C->Prog, "pageTable", Options);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
  EXPECT_GT(R.StatesExplored, 1u);
}

TEST(SafetyHarness, DetectsInjectedUseAfterFree) {
  // A process that unlinks the received object and then touches it.
  auto C = compile(R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
channel d: int
process buggy {
  while (true) {
    in(c, { $v, $data });
    unlink(data);
    out(d, data[0]);
  }
}
)");
  ASSERT_TRUE(C);
  SafetyOptions Options;
  McResult R = verifyProcessMemorySafety(*C->Prog, "buggy", Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.Violation.Kind, RuntimeErrorKind::UseAfterFree);
}

TEST(SafetyHarness, DetectsInjectedLeak) {
  // Never unlinks what it receives.
  auto C = compile(R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
process leaky {
  while (true) {
    in(c, { $v, $data });
  }
}
)");
  ASSERT_TRUE(C);
  SafetyOptions Options;
  McResult R = verifyProcessMemorySafety(*C->Prog, "leaky", Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
}

TEST(SafetyHarness, CorrectConsumerVerifiesClean) {
  auto C = compile(R"(
type msgT = record of { v: int, data: array of int }
channel c: msgT
channel d: int
process ok {
  while (true) {
    in(c, { $v, $data });
    out(d, data[0] + v);
    unlink(data);
  }
}
)");
  ASSERT_TRUE(C);
  SafetyOptions Options;
  McResult R = verifyProcessMemorySafety(*C->Prog, "ok", Options);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
}

} // namespace

//===--- test_sim.cpp - Device simulator unit tests ----------------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/Nic.h"

#include <gtest/gtest.h>

using namespace esp::sim;

namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue Q;
  std::vector<int> Order;
  Q.scheduleAt(30, [&] { Order.push_back(3); });
  Q.scheduleAt(10, [&] { Order.push_back(1); });
  Q.scheduleAt(20, [&] { Order.push_back(2); });
  Q.runAll();
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(Q.now(), 30u);
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
  EventQueue Q;
  std::vector<int> Order;
  for (int I = 0; I != 5; ++I)
    Q.scheduleAt(10, [&Order, I] { Order.push_back(I); });
  Q.runAll();
  EXPECT_EQ(Order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ScheduledInThePastClampsToNow) {
  EventQueue Q;
  bool Ran = false;
  Q.scheduleAt(100, [&] {
    Q.scheduleAt(50, [&] { Ran = true; }); // In the past.
  });
  Q.runAll();
  EXPECT_TRUE(Ran);
  EXPECT_EQ(Q.now(), 100u);
}

TEST(EventQueue, RunUntilStopsAtHorizon) {
  EventQueue Q;
  int Count = 0;
  std::function<void()> Tick = [&] {
    ++Count;
    Q.scheduleAfter(10, Tick);
  };
  Q.scheduleAfter(10, Tick);
  Q.runUntil(100);
  EXPECT_EQ(Count, 10);
  EXPECT_EQ(Q.now(), 100u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue Q;
  int Depth = 0;
  std::function<void(int)> Chain = [&](int N) {
    Depth = N;
    if (N < 5)
      Q.scheduleAfter(1, [&, N] { Chain(N + 1); });
  };
  Q.scheduleAt(0, [&] { Chain(1); });
  Q.runAll();
  EXPECT_EQ(Depth, 5);
}

//===----------------------------------------------------------------------===//
// NIC device model
//===----------------------------------------------------------------------===//

/// A trivial echo firmware: forwards every host request as one packet,
/// and notifies for every received packet. Used to test the device
/// plumbing independent of the real firmwares.
class EchoFirmware : public Firmware {
public:
  void runQuantum(NicEnv &Env) override {
    Env.charge(10);
    while (Env.hasHostReq()) {
      HostReq Req = Env.popHostReq();
      Packet P;
      P.Dest = Req.Dest;
      P.PayloadBytes = Req.Size;
      P.MsgBytes = Req.Size;
      P.Token = Req.Token;
      Env.transmit(P);
    }
    while (Env.hasRxPacket()) {
      Packet P = Env.popRxPacket();
      Env.notifyRecv(P.Src, P.MsgBytes, P.Token);
    }
  }
  const char *name() const override { return "echo"; }
};

TEST(NicModel, PacketTravelsBetweenNodes) {
  Simulator Sim(2);
  Sim.nic(0).setFirmware(std::make_unique<EchoFirmware>());
  Sim.nic(1).setFirmware(std::make_unique<EchoFirmware>());
  RecvNotification Got;
  unsigned Count = 0;
  Sim.nic(1).OnRecv = [&](const RecvNotification &Note) {
    Got = Note;
    ++Count;
  };
  HostReq Req;
  Req.Dest = 1;
  Req.Size = 256;
  Req.Token = 99;
  Sim.nic(0).postRequest(Req);
  EXPECT_TRUE(Sim.runUntil([&] { return Count == 1; }, 1'000'000'000));
  EXPECT_EQ(Got.Token, 99u);
  EXPECT_EQ(Got.Size, 256u);
  EXPECT_EQ(Got.Src, 0);
  EXPECT_GT(Got.At, 0u); // Wire latency plus DMA time passed.
}

TEST(NicModel, LargerPacketsTakeLonger) {
  auto timeFor = [](uint32_t Bytes) {
    Simulator Sim(2);
    Sim.nic(0).setFirmware(std::make_unique<EchoFirmware>());
    Sim.nic(1).setFirmware(std::make_unique<EchoFirmware>());
    SimTime Arrival = 0;
    Sim.nic(1).OnRecv = [&](const RecvNotification &Note) {
      Arrival = Note.At;
    };
    HostReq Req;
    Req.Dest = 1;
    Req.Size = Bytes;
    Sim.nic(0).postRequest(Req);
    Sim.runUntil([&] { return Arrival != 0; }, 1'000'000'000);
    return Arrival;
  };
  EXPECT_LT(timeFor(64), timeFor(4096));
  EXPECT_LT(timeFor(4096), timeFor(65536));
}

TEST(NicModel, DropFnLosesPackets) {
  Simulator Sim(2);
  Sim.nic(0).setFirmware(std::make_unique<EchoFirmware>());
  Sim.nic(1).setFirmware(std::make_unique<EchoFirmware>());
  Sim.DropFn = [](const Packet &) { return true; };
  unsigned Count = 0;
  Sim.nic(1).OnRecv = [&](const RecvNotification &) { ++Count; };
  HostReq Req;
  Req.Dest = 1;
  Req.Size = 16;
  Sim.nic(0).postRequest(Req);
  EXPECT_FALSE(Sim.runUntil([&] { return Count > 0; }, 10'000'000));
  EXPECT_EQ(Sim.PacketsDropped, 1u);
}

TEST(NicModel, FirmwareCyclesAccumulate) {
  Simulator Sim(2);
  Sim.nic(0).setFirmware(std::make_unique<EchoFirmware>());
  Sim.nic(1).setFirmware(std::make_unique<EchoFirmware>());
  unsigned Count = 0;
  Sim.nic(1).OnRecv = [&](const RecvNotification &) { ++Count; };
  for (int I = 0; I != 4; ++I) {
    HostReq Req;
    Req.Dest = 1;
    Req.Size = 16;
    Sim.nic(0).postRequest(Req);
  }
  Sim.runUntil([&] { return Count == 4; }, 1'000'000'000);
  EXPECT_GT(Sim.nic(0).TotalCycles, 0u);
  EXPECT_GT(Sim.nic(1).TotalCycles, 0u);
  EXPECT_EQ(Sim.nic(0).PacketsSent, 4u);
  EXPECT_EQ(Sim.nic(1).PacketsReceived, 4u);
}

TEST(NicModel, HostDmaSerializesTransfers) {
  // Two fetches through one engine must not overlap: the second
  // completion is at least one transfer-time after the first.
  Simulator Sim(1);
  struct FetchFirmware : Firmware {
    std::vector<SimTime> Completions;
    void runQuantum(NicEnv &Env) override {
      Env.charge(5);
      while (Env.hasHostReq()) {
        HostReq Req = Env.popHostReq();
        Env.startHostDmaFetch(Req.Size, Req.Token);
      }
      while (Env.hasFetchDone()) {
        Env.popFetchDone();
        Completions.push_back(Env.localNow());
      }
    }
    const char *name() const override { return "fetch"; }
  };
  auto FW = std::make_unique<FetchFirmware>();
  FetchFirmware *FWPtr = FW.get();
  Sim.nic(0).setFirmware(std::move(FW));
  HostReq A;
  A.Size = 4096;
  A.Token = 1;
  HostReq B;
  B.Size = 4096;
  B.Token = 2;
  Sim.nic(0).postRequest(A);
  Sim.nic(0).postRequest(B);
  Sim.runUntil([&] { return FWPtr->Completions.size() == 2; },
               1'000'000'000);
  ASSERT_EQ(FWPtr->Completions.size(), 2u);
  SimTime PerTransfer = static_cast<SimTime>(
      4096 * Sim.costs().HostDmaNsPerByte);
  EXPECT_GE(FWPtr->Completions[1] - FWPtr->Completions[0],
            PerTransfer / 2);
}

TEST(NicModel, WatchdogTicksAdvance) {
  Simulator Sim(1);
  struct TickCounter : Firmware {
    uint64_t Seen = 0;
    void runQuantum(NicEnv &Env) override {
      Env.charge(1);
      if (Env.timerFired()) {
        Seen = Env.ticks();
        Env.clearTimerEvent();
      }
    }
    const char *name() const override { return "ticks"; }
  };
  auto FW = std::make_unique<TickCounter>();
  TickCounter *FWPtr = FW.get();
  Sim.nic(0).setFirmware(std::move(FW));
  Sim.nic(0).startTimer();
  Sim.runUntil([&] { return FWPtr->Seen >= 3; },
               10 * Sim.costs().TimerTickNs);
  EXPECT_GE(FWPtr->Seen, 3u);
}

TEST(NicModel, BufferPoolExhaustsAndRecovers) {
  Simulator Sim(1);
  Nic &N = Sim.nic(0);
  NicEnv Env(N);
  unsigned Total = Sim.costs().NumSramBuffers;
  std::vector<int> Taken;
  for (unsigned I = 0; I != Total; ++I) {
    ASSERT_TRUE(Env.bufferAvailable());
    Taken.push_back(Env.allocBuffer());
  }
  EXPECT_FALSE(Env.bufferAvailable());
  Env.freeBuffer(Taken.back());
  EXPECT_TRUE(Env.bufferAvailable());
}

} // namespace

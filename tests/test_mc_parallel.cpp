//===--- test_mc_parallel.cpp - Parallel model checker tests ----------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for `--jobs N` (the multi-core engine of ParallelSearch.cpp)
/// and the concurrent visited-set backends. The load-bearing property:
/// a COMPLETED exhaustive search reports the identical verdict,
/// StatesStored, StatesExplored, and Transitions at any worker count,
/// because each stored state is expanded exactly once — by whichever
/// worker first inserted it — and the concurrent backends compute
/// fingerprints bit-identical to the sequential ones.
///
//===----------------------------------------------------------------------===//

#include "mc/SafetyHarness.h"
#include "mc/StateStore.h"
#include "TestHelpers.h"

#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace esp;
using namespace esp::test;

namespace {

//===----------------------------------------------------------------------===//
// Determinism: -jN == -j1 on completed searches
//===----------------------------------------------------------------------===//

// Clean (non-violating) models with enough interleaving to exercise
// work sharing. Deadlock/leak checks stay on, so a completed search
// really covers the whole reachable space.
const char *CleanCorpus[] = {
    // Producer/consumer over a rendezvous channel.
    R"(
channel c: int
process a { $i = 0; while (i < 3) { out(c, i); i = i + 1; } }
process b { $i = 0; while (i < 3) { in(c, $x); assert(x == i); i = i + 1; } }
)",
    // Two clients racing for a server: wide branching near the root.
    R"(
channel req: record of { ret: int }
channel reply: record of { ret: int, v: int }
process p1 { out(req, { @ }); in(reply, { @, $v }); assert(v == 1); }
process p2 { out(req, { @ }); in(reply, { @, $v }); assert(v == 1); }
process server {
  $n = 0;
  while (n < 2) { in(req, { $who }); out(reply, { who, 1 }); n = n + 1; }
}
)",
    // Object transfers: exercises COLLAPSE component interning.
    R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 3) {
    $data: array of int = { 2 -> 5 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 3) { in(c, $d); assert(d[0] == 5); unlink(d); i = i + 1; }
}
)",
};

struct Outcome {
  McVerdict Verdict;
  uint64_t Explored, Stored, Transitions;
};

Outcome runJobs(const ModuleIR &Module, McOptions Options, unsigned Jobs) {
  Options.Jobs = Jobs;
  McResult R = checkModel(Module, Options);
  return {R.Verdict, R.StatesExplored, R.StatesStored, R.Transitions};
}

TEST(ParallelMc, CompletedSearchMatchesSequentialAcrossVisitedKinds) {
  for (const char *Source : CleanCorpus) {
    auto C = compile(Source);
    ASSERT_TRUE(C);
    for (VisitedKind Kind :
         {VisitedKind::Exact, VisitedKind::Hash64, VisitedKind::Hash128}) {
      for (bool Collapse : {true, false}) {
        McOptions Options;
        Options.Visited = Kind;
        Options.Collapse = Collapse;
        Outcome Seq = runJobs(C->Module, Options, 1);
        ASSERT_EQ(Seq.Verdict, McVerdict::OK);
        for (unsigned Jobs : {2u, 4u}) {
          Outcome Par = runJobs(C->Module, Options, Jobs);
          EXPECT_EQ(Par.Verdict, Seq.Verdict);
          EXPECT_EQ(Par.Stored, Seq.Stored)
              << "visited kind " << int(Kind) << " collapse " << Collapse
              << " jobs " << Jobs;
          EXPECT_EQ(Par.Explored, Seq.Explored);
          EXPECT_EQ(Par.Transitions, Seq.Transitions);
          // The once-per-stored-state expansion invariant.
          EXPECT_EQ(Par.Explored, 1 + Par.Transitions);
        }
      }
    }
  }
}

TEST(ParallelMc, BitStateCompletedSearchMatchesSequential) {
  // Seed-0 concurrent bit-state hashes are bit-identical to the
  // sequential table's, so even the (lossy) supertrace counts agree.
  auto C = compile(CleanCorpus[1]);
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Mode = SearchMode::BitState;
  Options.BitStateBits = 16;
  Outcome Seq = runJobs(C->Module, Options, 1);
  for (unsigned Jobs : {2u, 4u}) {
    Outcome Par = runJobs(C->Module, Options, Jobs);
    EXPECT_EQ(Par.Verdict, Seq.Verdict);
    EXPECT_EQ(Par.Stored, Seq.Stored) << "jobs " << Jobs;
    EXPECT_EQ(Par.Explored, Seq.Explored);
  }
}

TEST(ParallelMc, RepeatedParallelRunsAreSelfConsistent) {
  // Schedules differ run to run; completed-search counts must not.
  auto C = compile(CleanCorpus[2]);
  ASSERT_TRUE(C);
  McOptions Options;
  Outcome First = runJobs(C->Module, Options, 4);
  for (int I = 0; I < 8; ++I) {
    Outcome Again = runJobs(C->Module, Options, 4);
    EXPECT_EQ(Again.Stored, First.Stored);
    EXPECT_EQ(Again.Explored, First.Explored);
    EXPECT_EQ(Again.Transitions, First.Transitions);
  }
}

TEST(ParallelMc, ReportsWorkerAccounting) {
  auto C = compile(CleanCorpus[0]);
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Jobs = 4;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.JobsUsed, 4u);
  ASSERT_EQ(R.WorkerExplored.size(), 4u);
  uint64_t Sum = 0;
  for (uint64_t E : R.WorkerExplored)
    Sum += E;
  // The root is expanded on the coordinating thread, workers do the rest.
  EXPECT_EQ(Sum + 1, R.StatesExplored);
  EXPECT_NE(R.report().find("workers"), std::string::npos);
}

TEST(ParallelMc, JobsZeroUsesHardwareConcurrency) {
  auto C = compile(CleanCorpus[0]);
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Jobs = 0;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::OK) << R.report();
  EXPECT_GE(R.JobsUsed, 1u);
  Options.Jobs = 1;
  McResult Seq = checkModel(C->Module, Options);
  EXPECT_EQ(R.StatesStored, Seq.StatesStored);
}

//===----------------------------------------------------------------------===//
// Violations: verdicts agree, parallel traces replay
//===----------------------------------------------------------------------===//

const char *ViolatingCorpus[] = {
    // Assertion race (only one interleaving fails).
    R"(
channel req: record of { ret: int }
channel reply: record of { ret: int, v: int }
process p1 { out(req, { @ }); in(reply, { @, $v }); }
process p2 { out(req, { @ }); in(reply, { @, $v }); assert(false); }
process server {
  $n = 0;
  while (n < 2) { in(req, { $who }); out(reply, { who, 1 }); n = n + 1; }
}
)",
    // Deadlock.
    R"(
channel go: int
channel c1: int
channel c2: int
process a { out(go, 1); out(c1, 1); in(c2, $x); }
process b { in(go, $g); out(c2, 2); in(c1, $y); }
)",
    // Use after free.
    R"(
channel c: array of int
process p {
  $data: array of int = { 4 -> 7 };
  out(c, data);
  unlink(data);
}
process q {
  in(c, $d);
  unlink(d);
  assert(d[0] == 7);
}
)",
    // Leak.
    R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 3) {
    $data: array of int = { 2 -> 1 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 3) { in(c, $d); i = i + 1; }
}
)",
};

TEST(ParallelMc, ViolationVerdictsAgreeAndTracesReplay) {
  for (const char *Source : ViolatingCorpus) {
    auto C = compile(Source);
    ASSERT_TRUE(C);
    McOptions Options;
    McResult Seq = checkModel(C->Module, Options);
    ASSERT_EQ(Seq.Verdict, McVerdict::Violation);
    for (unsigned Jobs : {2u, 4u}) {
      Options.Jobs = Jobs;
      McResult Par = checkModel(C->Module, Options);
      ASSERT_EQ(Par.Verdict, McVerdict::Violation) << Par.report();
      EXPECT_EQ(Par.Deadlock, Seq.Deadlock);
      EXPECT_EQ(Par.Violation.Kind, Seq.Violation.Kind) << Par.report();
      EXPECT_EQ(Par.Trace.size(), Par.TraceMoves.size());
      EXPECT_FALSE(Par.TraceMoves.empty());
      EXPECT_TRUE(replayTrace(C->Module, Options, Par))
          << "parallel trace does not replay:\n"
          << Par.report();
    }
  }
}

TEST(ParallelMc, ParallelSimulationFindsViolationAndReplays) {
  auto C = compile(R"(
channel c: int
process a { out(c, 1); }
process b { in(c, $x); assert(x == 0); }
)");
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Mode = SearchMode::Simulation;
  Options.SimulationRuns = 32;
  Options.Jobs = 4;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_EQ(R.JobsUsed, 4u);
  EXPECT_TRUE(replayTrace(C->Module, Options, R)) << R.report();
}

TEST(ParallelMc, ParallelSimulationCleanModelRunsAllRuns) {
  auto C = compile(CleanCorpus[0]);
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Mode = SearchMode::Simulation;
  Options.SimulationRuns = 64;
  Options.Jobs = 4;
  McResult R = checkModel(C->Module, Options);
  EXPECT_EQ(R.Verdict, McVerdict::PartialOK) << R.report();
}

//===----------------------------------------------------------------------===//
// Swarm verification
//===----------------------------------------------------------------------===//

TEST(ParallelMc, SwarmCoverageAtLeastSingleWorkerBitState) {
  // Worker 0 of a swarm reproduces the sequential seed-0 search, and
  // every worker's discoveries land in the shared union table, so the
  // union coverage can only be >= the single-worker coverage.
  auto C = compile(CleanCorpus[1]);
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Mode = SearchMode::BitState;
  Options.BitStateBits = 16;
  Outcome Seq = runJobs(C->Module, Options, 1);
  Options.Swarm = true;
  for (unsigned Jobs : {2u, 4u}) {
    Outcome Swarm = runJobs(C->Module, Options, Jobs);
    EXPECT_GE(Swarm.Stored, Seq.Stored) << "jobs " << Jobs;
  }
}

TEST(ParallelMc, SwarmFindsViolation) {
  auto C = compile(ViolatingCorpus[0]);
  ASSERT_TRUE(C);
  McOptions Options;
  Options.Mode = SearchMode::BitState;
  Options.BitStateBits = 16;
  Options.Swarm = true;
  Options.Jobs = 4;
  McResult R = checkModel(C->Module, Options);
  ASSERT_EQ(R.Verdict, McVerdict::Violation) << R.report();
  EXPECT_TRUE(replayTrace(C->Module, Options, R)) << R.report();
}

//===----------------------------------------------------------------------===//
// §5.3 safety harnesses stay deterministic under -jN
//===----------------------------------------------------------------------===//

const char *PageTableSource = R"(
const TABLE_SIZE = 2;
type updateT = record of { vAddr: int, pAddr: int }
type userT = union of { update: updateT }
channel ptReqC: record of { ret: int, vAddr: int }
channel ptReplyC: record of { ret: int, pAddr: int }
channel userReqC: userT
process pageTable {
  $table: #array of int = #{ TABLE_SIZE -> 0 };
  while (true) {
    alt {
      case( in( ptReqC, { $ret, $vAddr})) {
        out( ptReplyC, { ret, table[vAddr % TABLE_SIZE]});
      }
      case( in( userReqC, { update |> { $vAddr, $pAddr}})) {
        table[vAddr % TABLE_SIZE] = pAddr;
      }
    }
  }
}
)";

TEST(ParallelMc, SafetyHarnessDeterministicUnderJobs) {
  auto C = compile(PageTableSource);
  ASSERT_TRUE(C);
  SafetyOptions Options;
  Options.IntDomain = {0, 1};
  McResult Seq = verifyProcessMemorySafety(*C->Prog, "pageTable", Options);
  ASSERT_EQ(Seq.Verdict, McVerdict::OK) << Seq.report();
  Options.Mc.Jobs = 4;
  McResult Par = verifyProcessMemorySafety(*C->Prog, "pageTable", Options);
  EXPECT_EQ(Par.Verdict, McVerdict::OK) << Par.report();
  EXPECT_EQ(Par.StatesStored, Seq.StatesStored);
  EXPECT_EQ(Par.StatesExplored, Seq.StatesExplored);
  EXPECT_EQ(Par.Transitions, Seq.Transitions);
}

//===----------------------------------------------------------------------===//
// Concurrent storage backends
//===----------------------------------------------------------------------===//

std::string keyFor(int I) { return "state-" + std::to_string(I); }

TEST(ConcurrentVisitedSet, ExactInsertSemantics) {
  ConcurrentVisitedSet V = ConcurrentVisitedSet::exact();
  EXPECT_TRUE(V.insert("a"));
  EXPECT_TRUE(V.insert("b"));
  EXPECT_FALSE(V.insert("a"));
  EXPECT_EQ(V.size(), 2u);
  EXPECT_GT(V.bytes(), 0u);
}

TEST(ConcurrentVisitedSet, HammeredInsertCountsDistinctKeys) {
  // 4 threads race over an overlapping key range; every key must be
  // stored exactly once regardless of interleaving.
  constexpr int NumKeys = 2000;
  for (auto Make : {+[] { return ConcurrentVisitedSet::exact(4); },
                    +[] { return ConcurrentVisitedSet::hashCompact(false, 4); },
                    +[] { return ConcurrentVisitedSet::hashCompact(true, 4); }}) {
    ConcurrentVisitedSet V = Make();
    std::atomic<uint64_t> NewCount{0};
    std::vector<std::thread> Threads;
    for (int T = 0; T < 4; ++T)
      Threads.emplace_back([&V, &NewCount, T] {
        // Each thread covers 3/4 of the space, offset by thread id.
        for (int I = 0; I < NumKeys * 3 / 4; ++I)
          if (V.insert(keyFor((I + T * NumKeys / 4) % NumKeys)))
            NewCount.fetch_add(1, std::memory_order_relaxed);
      });
    for (std::thread &T : Threads)
      T.join();
    EXPECT_EQ(V.size(), uint64_t(NumKeys));
    EXPECT_EQ(NewCount.load(), uint64_t(NumKeys));
  }
}

TEST(ConcurrentVisitedSet, BitStateSeedChangesHashes) {
  // Different seeds must map keys to different bit positions (that is
  // the whole point of swarm verification). With a tiny table and many
  // keys, two seeds collide differently, so the stored counts differ
  // with overwhelming probability.
  ConcurrentVisitedSet A = ConcurrentVisitedSet::bitState(10, 0);
  ConcurrentVisitedSet B = ConcurrentVisitedSet::bitState(10, 0x1234567);
  for (int I = 0; I < 4000; ++I) {
    std::string K = keyFor(I);
    A.insert(K);
    B.insert(K);
  }
  EXPECT_NE(A.size(), 0u);
  EXPECT_NE(B.size(), 0u);
  EXPECT_NE(A.size(), B.size());
}

TEST(ConcurrentStateCompressor, SameBlobSameIndexAcrossThreads) {
  ConcurrentStateCompressor C(4);
  constexpr int NumBlobs = 512;
  std::vector<std::vector<uint32_t>> PerThread(4);
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&C, &PerThread, T] {
      PerThread[T].resize(NumBlobs);
      for (int I = 0; I < NumBlobs; ++I)
        PerThread[T][I] = C.intern("blob-" + std::to_string(I));
    });
  for (std::thread &T : Threads)
    T.join();
  // Every thread observed the identical blob -> index mapping, and the
  // indices are a bijection over [0, NumBlobs).
  std::set<uint32_t> Distinct;
  for (int I = 0; I < NumBlobs; ++I) {
    Distinct.insert(PerThread[0][I]);
    for (int T = 1; T < 4; ++T)
      EXPECT_EQ(PerThread[T][I], PerThread[0][I]);
  }
  EXPECT_EQ(Distinct.size(), size_t(NumBlobs));
  EXPECT_EQ(C.components(), uint32_t(NumBlobs));
  EXPECT_GT(C.tableBytes(), 0u);
}

//===----------------------------------------------------------------------===//
// Satellite: transparent lookup in the sequential stores
//===----------------------------------------------------------------------===//

TEST(StateCompressor, InternAcceptsStringView) {
  StateCompressor C;
  std::string Blob = "component-bytes";
  uint32_t First = C.intern(std::string_view(Blob));
  uint32_t Again = C.intern(std::string_view(Blob));
  EXPECT_EQ(First, Again);
  EXPECT_EQ(C.components(), 1u);
}

TEST(VisitedSet, ExactInsertAcceptsStringView) {
  VisitedSet V = VisitedSet::exact();
  std::string Key = "full-state-vector";
  EXPECT_TRUE(V.insert(std::string_view(Key)));
  EXPECT_FALSE(V.insert(std::string_view(Key)));
  EXPECT_EQ(V.size(), 1u);
}

} // namespace

//===--- test_mc_compress.cpp - State compression tests ---------------------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the model checker's state-storage layer: canonical
/// serialization, COLLAPSE component interning, and the visited-set
/// backends (exact, hash compaction, bit-state).
///
//===----------------------------------------------------------------------===//

#include "mc/ModelChecker.h"
#include "mc/StateStore.h"
#include "TestHelpers.h"

#include <algorithm>

using namespace esp;
using namespace esp::test;

namespace {

MachineOptions verifyOptions() {
  MachineOptions O;
  O.MaxObjects = 256;
  O.ReuseObjectIds = true;
  O.DeepCopyTransfers = true;
  return O;
}

//===----------------------------------------------------------------------===//
// StateCompressor / VisitedSet unit tests
//===----------------------------------------------------------------------===//

TEST(StateCompressor, InternsEachBlobOnce) {
  StateCompressor C;
  uint32_t A = C.intern("alpha");
  uint32_t B = C.intern("beta");
  EXPECT_NE(A, B);
  EXPECT_EQ(C.intern("alpha"), A);
  EXPECT_EQ(C.intern("beta"), B);
  EXPECT_EQ(C.intern(std::string("alp") + "ha"), A);
  EXPECT_EQ(C.components(), 2u);
  EXPECT_GT(C.tableBytes(), 0u);
}

TEST(VisitedSet, ExactDetectsDuplicates) {
  VisitedSet V = VisitedSet::exact();
  EXPECT_TRUE(V.insert("s1"));
  EXPECT_TRUE(V.insert("s2"));
  EXPECT_FALSE(V.insert("s1"));
  EXPECT_EQ(V.size(), 2u);
  EXPECT_GT(V.bytes(), 0u);
}

TEST(VisitedSet, HashCompactionDistinguishesDistinctKeys) {
  for (bool Wide : {false, true}) {
    VisitedSet V = VisitedSet::hashCompact(Wide);
    for (int I = 0; I != 1000; ++I) {
      std::string Key = "state-" + std::to_string(I);
      EXPECT_TRUE(V.insert(Key)) << "wide=" << Wide << " i=" << I;
      EXPECT_FALSE(V.insert(Key)) << "wide=" << Wide << " i=" << I;
    }
    EXPECT_EQ(V.size(), 1000u);
    // Fingerprints are fixed-size: far cheaper than the full keys.
    EXPECT_LT(V.bytes(), VisitedSet::exact().bytes() + 1000 * 64);
  }
}

TEST(VisitedSet, BitStateUsesFixedTable) {
  VisitedSet V = VisitedSet::bitState(clampedBitStateBits(10));
  size_t TableBytes = V.bytes();
  EXPECT_EQ(TableBytes, (1u << 10) / 8);
  uint64_t Inserted = 0;
  for (int I = 0; I != 200; ++I)
    if (V.insert("state-" + std::to_string(I)))
      ++Inserted;
  // Tiny table: most states insert, a few may collide, memory is flat.
  EXPECT_GT(Inserted, 150u);
  EXPECT_EQ(V.bytes(), TableBytes);
}

//===----------------------------------------------------------------------===//
// Canonical serialization and COLLAPSE components
//===----------------------------------------------------------------------===//

TEST(StateSerialization, ScratchOverloadMatchesValueReturn) {
  auto C = compile(R"(
channel c: array of int
process p { $d: array of int = { 3 -> 9 }; out(c, d); unlink(d); }
process q { in(c, $x); unlink(x); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, verifyOptions());
  M.start();
  std::string Scratch = "stale-contents";
  M.serializeState(Scratch);
  EXPECT_EQ(Scratch, M.serializeState());
}

TEST(StateSerialization, ComponentsTrackStateIdentity) {
  auto C = compile(R"(
channel c: array of int
process p { $d: array of int = { 3 -> 9 }; out(c, d); unlink(d); }
process q { in(c, $x); in(c, $y); }
)");
  ASSERT_TRUE(C);
  Machine M(C->Module, verifyOptions());
  M.start();

  std::string Control1, Control2;
  std::vector<std::string> Blobs1, Blobs2;
  size_t N1 = M.serializeComponents(Control1, Blobs1);
  EXPECT_GE(N1, 1u) << "p holds a live array at its block point";

  // Serialization is a pure observation: repeating it is identical.
  size_t N2 = M.serializeComponents(Control2, Blobs2);
  ASSERT_EQ(N1, N2);
  EXPECT_EQ(Control1, Control2);
  for (size_t I = 0; I != N1; ++I)
    EXPECT_EQ(Blobs1[I], Blobs2[I]) << "blob " << I;

  // Advancing the machine changes the component view; restoring the
  // snapshot restores it exactly.
  Machine::Snapshot Snap = M.snapshot();
  std::vector<Move> Moves = M.enumerateMoves();
  ASSERT_FALSE(Moves.empty());
  M.applyMove(Moves[0]);
  std::string ControlAfter;
  std::vector<std::string> BlobsAfter;
  M.serializeComponents(ControlAfter, BlobsAfter);
  EXPECT_NE(ControlAfter, Control1);

  M.restore(Snap);
  std::string ControlBack;
  std::vector<std::string> BlobsBack;
  size_t NBack = M.serializeComponents(ControlBack, BlobsBack);
  ASSERT_EQ(NBack, N1);
  EXPECT_EQ(ControlBack, Control1);
  for (size_t I = 0; I != N1; ++I)
    EXPECT_EQ(BlobsBack[I], Blobs1[I]) << "blob " << I;
}

TEST(StateSerialization, AllocationOrderDoesNotChangeIdentity) {
  // Two independent transfers commute: applying them in either order
  // reaches the same semantic state, but deep-copy allocation happens in
  // a different order, so raw objectIds differ. The canonical
  // serialization (and the component decomposition) must coincide.
  auto C = compile(R"(
channel c1: array of int
channel c2: array of int
channel hold1: int
channel hold2: int
process p1 { $d: array of int = { 2 -> 7 }; out(c1, d); unlink(d); }
process p2 { $d: array of int = { 2 -> 9 }; out(c2, d); unlink(d); }
process q1 { in(c1, $x); in(hold1, $h); unlink(x); }
process q2 { in(c2, $x); in(hold2, $h); unlink(x); }
)");
  ASSERT_TRUE(C);

  Machine A(C->Module, verifyOptions());
  Machine B(C->Module, verifyOptions());
  A.start();
  B.start();

  std::vector<Move> MovesA = A.enumerateMoves();
  ASSERT_EQ(MovesA.size(), 2u) << "the two transfers are independent";
  std::vector<Move> MovesB = B.enumerateMoves();
  ASSERT_EQ(MovesB.size(), 2u);
  ASSERT_TRUE(MovesA[0] == MovesB[0]);
  ASSERT_TRUE(MovesA[1] == MovesB[1]);

  // A: first then second; B: second then first.
  A.applyMove(MovesA[0]);
  A.applyMove(MovesA[1]);
  B.applyMove(MovesB[1]);
  B.applyMove(MovesB[0]);

  EXPECT_EQ(A.serializeState(), B.serializeState());

  std::string ControlA, ControlB;
  std::vector<std::string> BlobsA, BlobsB;
  size_t NA = A.serializeComponents(ControlA, BlobsA);
  size_t NB = B.serializeComponents(ControlB, BlobsB);
  ASSERT_EQ(NA, NB);
  EXPECT_EQ(ControlA, ControlB);
  for (size_t I = 0; I != NA; ++I)
    EXPECT_EQ(BlobsA[I], BlobsB[I]) << "blob " << I;
}

TEST(StateSerialization, EnumerateMovesIsCanonicallyPure) {
  // With sunk allocations (§6.1 lazy-out), enumerating moves prepares
  // out values — allocating probe objects. The wrapper must undo them:
  // the snapshot-free DFS replays moves from checkpoints and relies on
  // enumeration not perturbing the canonical state.
  OptOptions Opts = OptOptions::all();
  auto C = compile(R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 2) {
    out(c, { 2 -> i });
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 2) { in(c, $x); unlink(x); i = i + 1; }
}
)",
                   &Opts);
  ASSERT_TRUE(C);
  bool SawLazyOut = false;
  for (const ProcIR &P : C->Module.Procs)
    for (const Inst &I : P.Insts)
      for (const IRCase &Case : I.Cases)
        SawLazyOut |= Case.LazyOut;
  EXPECT_TRUE(SawLazyOut) << "model must exercise the lazy-out path";

  Machine M(C->Module, verifyOptions());
  M.start();
  uint32_t LiveBefore = M.heap().getLiveCount();
  std::string Before = M.serializeState();
  std::vector<Move> Moves = M.enumerateMoves();
  EXPECT_FALSE(Moves.empty());
  EXPECT_EQ(M.serializeState(), Before);
  EXPECT_EQ(M.heap().getLiveCount(), LiveBefore);
  // And enumeration stays repeatable after the cleanup.
  std::vector<Move> Again = M.enumerateMoves();
  ASSERT_EQ(Again.size(), Moves.size());
  for (size_t I = 0; I != Moves.size(); ++I)
    EXPECT_TRUE(Again[I] == Moves[I]);
  EXPECT_EQ(M.serializeState(), Before);
}

//===----------------------------------------------------------------------===//
// End-to-end memory accounting
//===----------------------------------------------------------------------===//

TEST(ModelChecker, CompressionShrinksStoredStates) {
  // A model with real heap payloads: COLLAPSE stores each object blob
  // once and hash compaction stores only fingerprints, so both must
  // undercut exact storage of full vectors.
  auto C = compile(R"(
channel c: array of int
process p {
  $i = 0;
  while (i < 4) {
    $data: array of int = { 8 -> 3 };
    out(c, data);
    unlink(data);
    i = i + 1;
  }
}
process q {
  $i = 0;
  while (i < 4) { in(c, $x); unlink(x); i = i + 1; }
}
)");
  ASSERT_TRUE(C);

  McOptions Exact;
  Exact.Visited = VisitedKind::Exact;
  Exact.Collapse = false;
  McResult RExact = checkModel(C->Module, Exact);
  EXPECT_EQ(RExact.Verdict, McVerdict::OK) << RExact.report();

  McOptions Collapse;
  Collapse.Visited = VisitedKind::Exact;
  Collapse.Collapse = true;
  McResult RCollapse = checkModel(C->Module, Collapse);
  EXPECT_EQ(RCollapse.Verdict, McVerdict::OK) << RCollapse.report();
  EXPECT_EQ(RCollapse.StatesStored, RExact.StatesStored);
  // The compressed key (control bytes + component indices) is smaller
  // than the flat vector with object contents inlined.
  EXPECT_LT(RCollapse.CompressedStateBytes, RExact.CompressedStateBytes);
  EXPECT_GT(RCollapse.ComponentTableBytes, 0u);

  McOptions Hash;
  Hash.Visited = VisitedKind::Hash64;
  McResult RHash = checkModel(C->Module, Hash);
  EXPECT_EQ(RHash.Verdict, McVerdict::OK) << RHash.report();
  EXPECT_EQ(RHash.StatesStored, RExact.StatesStored);
  EXPECT_LT(RHash.MemoryBytes, RExact.MemoryBytes);
}

} // namespace

//===--- test_determinism.cpp - Fast-path bit-identical search counts ----------==//
//
// Part of the esplang project (ESP, PLDI 2001 reproduction).
//
// The runtime fast path (precompiled dispatch, blocked bitmasks, pattern
// prefilter, heap free lists) must not change what the model checker
// explores: enumerateMoves stays canonically pure, so every exhaustive
// search reports bit-identical verdict, states explored, states stored,
// and transitions. The counts below are golden values captured from the
// IR-walking interpreter; any drift means the fast path changed
// semantics, not just speed.
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"
#include "mc/ModelChecker.h"
#include "mc/SafetyHarness.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"
#include "vmmc/EspFirmwareSource.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

using namespace esp;

namespace {

std::string readExample(const std::string &Name) {
  std::string Path = std::string(ESP_SOURCE_DIR) + "/examples/esp/" + Name;
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In) << "cannot read " << Path;
  std::ostringstream Text;
  Text << In.rdbuf();
  return Text.str();
}

struct ProcessGolden {
  const char *Process;
  McVerdict Verdict;
  uint64_t Explored;
  uint64_t Stored;
  uint64_t Transitions;
};

void expectCounts(const McResult &R, const ProcessGolden &G,
                  const std::string &Label) {
  EXPECT_EQ(R.Verdict, G.Verdict) << Label;
  EXPECT_EQ(R.StatesExplored, G.Explored) << Label;
  EXPECT_EQ(R.StatesStored, G.Stored) << Label;
  EXPECT_EQ(R.Transitions, G.Transitions) << Label;
}

void checkProcessGoldens(const std::string &Source, const char *SourceName,
                         const ProcessGolden *Goldens, size_t NumGoldens,
                         uint64_t MaxStates = 0) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R = compileBuffer(SM, Diags, SourceName, Source);
  ASSERT_TRUE(R.Success) << Diags.renderAll();
  for (size_t I = 0; I != NumGoldens; ++I) {
    SafetyOptions Options;
    if (MaxStates)
      Options.Mc.MaxStates = MaxStates;
    McResult Result =
        verifyProcessMemorySafety(*R.Prog, Goldens[I].Process, Options);
    expectCounts(Result, Goldens[I],
                 std::string(SourceName) + " --process " +
                     Goldens[I].Process);
  }
}

struct SystemGolden {
  const char *File;
  McVerdict Verdict;
  uint64_t Explored;
  uint64_t Stored;
  uint64_t Transitions;
};

TEST(Determinism, VmmcPerProcessCounts) {
  static const ProcessGolden Goldens[] = {
      {"pageTable", McVerdict::OK, 221, 45, 220},
      {"userReq", McVerdict::OK, 745, 105, 744},
      {"deliver", McVerdict::OK, 285, 29, 284},
  };
  checkProcessGoldens(vmmc::getVmmcEspSource(), "vmmc.esp", Goldens,
                      std::size(Goldens));
}

TEST(Determinism, VmmcBoundedSearchCounts) {
  // Truncated searches exercise the DFS order itself: the same 50000
  // states must be popped in the same order for the counts to agree.
  static const ProcessGolden Goldens[] = {
      {"txWindow", McVerdict::StateLimit, 50000, 7049, 49999},
      {"rxDemux", McVerdict::StateLimit, 50000, 882, 49999},
  };
  checkProcessGoldens(vmmc::getVmmcEspSource(), "vmmc.esp", Goldens,
                      std::size(Goldens), /*MaxStates=*/50000);
}

TEST(Determinism, VmmcParallelSearchMatchesSequential) {
  SourceManager SM;
  DiagnosticEngine Diags(SM);
  CompileResult R =
      compileBuffer(SM, Diags, "vmmc.esp", vmmc::getVmmcEspSource());
  ASSERT_TRUE(R.Success) << Diags.renderAll();
  for (unsigned Jobs : {1u, 2u, 4u}) {
    SafetyOptions Options;
    Options.Mc.Jobs = Jobs;
    McResult Result = verifyProcessMemorySafety(*R.Prog, "pageTable", Options);
    ProcessGolden G = {"pageTable", McVerdict::OK, 221, 45, 220};
    expectCounts(Result, G, "pageTable --jobs " + std::to_string(Jobs));
  }
}

TEST(Determinism, ExamplesPerProcessCounts) {
  {
    static const ProcessGolden Goldens[] = {
        {"translator", McVerdict::OK, 33, 21, 32},
        {"pageTable", McVerdict::OK, 325, 65, 324},
    };
    checkProcessGoldens(readExample("pagetable.esp"), "pagetable.esp",
                        Goldens, std::size(Goldens));
  }
  {
    static const ProcessGolden Goldens[] = {
        {"producer", McVerdict::OK, 11, 11, 10},
        {"add5", McVerdict::OK, 9, 5, 8},
        {"consumer", McVerdict::Violation, 2, 1, 1},
    };
    checkProcessGoldens(readExample("quickstart.esp"), "quickstart.esp",
                        Goldens, std::size(Goldens));
  }
  {
    static const ProcessGolden Goldens[] = {
        {"sender", McVerdict::OK, 12, 6, 11},
        {"wire", McVerdict::OK, 21, 7, 20},
        {"receiver", McVerdict::Violation, 5, 3, 4},
        {"sink", McVerdict::OK, 7, 3, 6},
    };
    checkProcessGoldens(readExample("sliding_window.esp"),
                        "sliding_window.esp", Goldens, std::size(Goldens));
  }
}

TEST(Determinism, ExamplesWholeSystemCounts) {
  // Whole-system searches under the default options; all three examples
  // end in an expected terminal violation (deadlock or assertion) with
  // fixed counts.
  static const SystemGolden Goldens[] = {
      {"pagetable.esp", McVerdict::Violation, 1, 1, 0},
      {"quickstart.esp", McVerdict::Violation, 21, 21, 20},
      {"sliding_window.esp", McVerdict::Violation, 19, 16, 18},
  };
  for (const SystemGolden &G : Goldens) {
    SourceManager SM;
    DiagnosticEngine Diags(SM);
    CompileResult R = compileBuffer(SM, Diags, G.File, readExample(G.File));
    ASSERT_TRUE(R.Success) << Diags.renderAll();
    McResult Result = checkModel(R.Module, McOptions());
    EXPECT_EQ(Result.Verdict, G.Verdict) << G.File;
    EXPECT_EQ(Result.StatesExplored, G.Explored) << G.File;
    EXPECT_EQ(Result.StatesStored, G.Stored) << G.File;
    EXPECT_EQ(Result.Transitions, G.Transitions) << G.File;
  }
}

} // namespace

file(REMOVE_RECURSE
  "CMakeFiles/sliding_window_verify.dir/sliding_window_verify.cpp.o"
  "CMakeFiles/sliding_window_verify.dir/sliding_window_verify.cpp.o.d"
  "sliding_window_verify"
  "sliding_window_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliding_window_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

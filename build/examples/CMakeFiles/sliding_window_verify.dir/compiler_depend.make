# Empty compiler generated dependencies file for sliding_window_verify.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vmmc_demo.dir/vmmc_demo.cpp.o"
  "CMakeFiles/vmmc_demo.dir/vmmc_demo.cpp.o.d"
  "vmmc_demo"
  "vmmc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmmc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

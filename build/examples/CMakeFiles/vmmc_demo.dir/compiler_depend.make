# Empty compiler generated dependencies file for vmmc_demo.
# This may be replaced when dependencies are built.

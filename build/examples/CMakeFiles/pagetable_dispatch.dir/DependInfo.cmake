
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/pagetable_dispatch.cpp" "examples/CMakeFiles/pagetable_dispatch.dir/pagetable_dispatch.cpp.o" "gcc" "examples/CMakeFiles/pagetable_dispatch.dir/pagetable_dispatch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mc/CMakeFiles/esp_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/esp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/vmmc/CMakeFiles/esp_vmmc.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/esp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/esp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/esp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/esp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/pagetable_dispatch.dir/pagetable_dispatch.cpp.o"
  "CMakeFiles/pagetable_dispatch.dir/pagetable_dispatch.cpp.o.d"
  "pagetable_dispatch"
  "pagetable_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagetable_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

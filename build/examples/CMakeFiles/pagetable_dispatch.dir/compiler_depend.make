# Empty compiler generated dependencies file for pagetable_dispatch.
# This may be replaced when dependencies are built.

# Empty dependencies file for esp_vmmc.
# This may be replaced when dependencies are built.

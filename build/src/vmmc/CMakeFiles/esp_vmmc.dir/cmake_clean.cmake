file(REMOVE_RECURSE
  "CMakeFiles/esp_vmmc.dir/EspFirmware.cpp.o"
  "CMakeFiles/esp_vmmc.dir/EspFirmware.cpp.o.d"
  "CMakeFiles/esp_vmmc.dir/OrigFirmware.cpp.o"
  "CMakeFiles/esp_vmmc.dir/OrigFirmware.cpp.o.d"
  "CMakeFiles/esp_vmmc.dir/Workloads.cpp.o"
  "CMakeFiles/esp_vmmc.dir/Workloads.cpp.o.d"
  "libesp_vmmc.a"
  "libesp_vmmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_vmmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libesp_vmmc.a"
)

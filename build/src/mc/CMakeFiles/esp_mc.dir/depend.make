# Empty dependencies file for esp_mc.
# This may be replaced when dependencies are built.

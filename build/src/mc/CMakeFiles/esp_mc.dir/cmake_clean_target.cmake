file(REMOVE_RECURSE
  "libesp_mc.a"
)

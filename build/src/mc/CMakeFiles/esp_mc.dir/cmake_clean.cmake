file(REMOVE_RECURSE
  "CMakeFiles/esp_mc.dir/ModelChecker.cpp.o"
  "CMakeFiles/esp_mc.dir/ModelChecker.cpp.o.d"
  "CMakeFiles/esp_mc.dir/SafetyHarness.cpp.o"
  "CMakeFiles/esp_mc.dir/SafetyHarness.cpp.o.d"
  "libesp_mc.a"
  "libesp_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for esp_runtime.
# This may be replaced when dependencies are built.

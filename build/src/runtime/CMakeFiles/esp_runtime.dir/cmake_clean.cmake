file(REMOVE_RECURSE
  "CMakeFiles/esp_runtime.dir/Heap.cpp.o"
  "CMakeFiles/esp_runtime.dir/Heap.cpp.o.d"
  "CMakeFiles/esp_runtime.dir/Machine.cpp.o"
  "CMakeFiles/esp_runtime.dir/Machine.cpp.o.d"
  "libesp_runtime.a"
  "libesp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libesp_runtime.a"
)

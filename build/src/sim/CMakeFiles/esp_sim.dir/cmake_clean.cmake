file(REMOVE_RECURSE
  "CMakeFiles/esp_sim.dir/Nic.cpp.o"
  "CMakeFiles/esp_sim.dir/Nic.cpp.o.d"
  "libesp_sim.a"
  "libesp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

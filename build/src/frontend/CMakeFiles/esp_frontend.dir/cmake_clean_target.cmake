file(REMOVE_RECURSE
  "libesp_frontend.a"
)

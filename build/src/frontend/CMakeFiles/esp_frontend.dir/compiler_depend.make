# Empty compiler generated dependencies file for esp_frontend.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/esp_frontend.dir/AST.cpp.o"
  "CMakeFiles/esp_frontend.dir/AST.cpp.o.d"
  "CMakeFiles/esp_frontend.dir/Instantiate.cpp.o"
  "CMakeFiles/esp_frontend.dir/Instantiate.cpp.o.d"
  "CMakeFiles/esp_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/esp_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/esp_frontend.dir/Parser.cpp.o"
  "CMakeFiles/esp_frontend.dir/Parser.cpp.o.d"
  "CMakeFiles/esp_frontend.dir/PatternAnalysis.cpp.o"
  "CMakeFiles/esp_frontend.dir/PatternAnalysis.cpp.o.d"
  "CMakeFiles/esp_frontend.dir/PrettyPrinter.cpp.o"
  "CMakeFiles/esp_frontend.dir/PrettyPrinter.cpp.o.d"
  "CMakeFiles/esp_frontend.dir/Sema.cpp.o"
  "CMakeFiles/esp_frontend.dir/Sema.cpp.o.d"
  "CMakeFiles/esp_frontend.dir/Type.cpp.o"
  "CMakeFiles/esp_frontend.dir/Type.cpp.o.d"
  "libesp_frontend.a"
  "libesp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libesp_support.a"
)

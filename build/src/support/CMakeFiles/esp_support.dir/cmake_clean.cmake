file(REMOVE_RECURSE
  "CMakeFiles/esp_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/esp_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/esp_support.dir/SourceManager.cpp.o"
  "CMakeFiles/esp_support.dir/SourceManager.cpp.o.d"
  "CMakeFiles/esp_support.dir/StringExtras.cpp.o"
  "CMakeFiles/esp_support.dir/StringExtras.cpp.o.d"
  "libesp_support.a"
  "libesp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

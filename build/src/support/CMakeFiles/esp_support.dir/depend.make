# Empty dependencies file for esp_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libesp_ir.a"
)

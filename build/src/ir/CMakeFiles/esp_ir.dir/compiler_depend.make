# Empty compiler generated dependencies file for esp_ir.
# This may be replaced when dependencies are built.

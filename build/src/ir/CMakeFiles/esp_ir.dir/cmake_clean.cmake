file(REMOVE_RECURSE
  "CMakeFiles/esp_ir.dir/Lowering.cpp.o"
  "CMakeFiles/esp_ir.dir/Lowering.cpp.o.d"
  "CMakeFiles/esp_ir.dir/Passes.cpp.o"
  "CMakeFiles/esp_ir.dir/Passes.cpp.o.d"
  "libesp_ir.a"
  "libesp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

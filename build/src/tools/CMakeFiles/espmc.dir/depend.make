# Empty dependencies file for espmc.
# This may be replaced when dependencies are built.

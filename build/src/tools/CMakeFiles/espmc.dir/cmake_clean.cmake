file(REMOVE_RECURSE
  "CMakeFiles/espmc.dir/espmc.cpp.o"
  "CMakeFiles/espmc.dir/espmc.cpp.o.d"
  "espmc"
  "espmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

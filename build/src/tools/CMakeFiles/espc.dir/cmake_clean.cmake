file(REMOVE_RECURSE
  "CMakeFiles/espc.dir/espc.cpp.o"
  "CMakeFiles/espc.dir/espc.cpp.o.d"
  "espc"
  "espc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/espc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

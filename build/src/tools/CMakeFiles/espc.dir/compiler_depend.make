# Empty compiler generated dependencies file for espc.
# This may be replaced when dependencies are built.

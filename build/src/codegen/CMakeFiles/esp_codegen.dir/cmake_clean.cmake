file(REMOVE_RECURSE
  "CMakeFiles/esp_codegen.dir/CCodeGen.cpp.o"
  "CMakeFiles/esp_codegen.dir/CCodeGen.cpp.o.d"
  "CMakeFiles/esp_codegen.dir/PromelaGen.cpp.o"
  "CMakeFiles/esp_codegen.dir/PromelaGen.cpp.o.d"
  "libesp_codegen.a"
  "libesp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

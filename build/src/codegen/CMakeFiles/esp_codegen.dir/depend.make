# Empty dependencies file for esp_codegen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libesp_codegen.a"
)

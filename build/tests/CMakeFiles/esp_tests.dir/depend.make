# Empty dependencies file for esp_tests.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/esp_tests.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_codegen.cpp.o.d"
  "/root/repo/tests/test_heap.cpp" "tests/CMakeFiles/esp_tests.dir/test_heap.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_heap.cpp.o.d"
  "/root/repo/tests/test_instantiate.cpp" "tests/CMakeFiles/esp_tests.dir/test_instantiate.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_instantiate.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/esp_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_lexer.cpp" "tests/CMakeFiles/esp_tests.dir/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_lexer.cpp.o.d"
  "/root/repo/tests/test_machine.cpp" "tests/CMakeFiles/esp_tests.dir/test_machine.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_machine.cpp.o.d"
  "/root/repo/tests/test_mc.cpp" "tests/CMakeFiles/esp_tests.dir/test_mc.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_mc.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/esp_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_printer.cpp" "tests/CMakeFiles/esp_tests.dir/test_printer.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_printer.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/esp_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sema.cpp" "tests/CMakeFiles/esp_tests.dir/test_sema.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_sema.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/esp_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/esp_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_types.cpp" "tests/CMakeFiles/esp_tests.dir/test_types.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_types.cpp.o.d"
  "/root/repo/tests/test_vmmc.cpp" "tests/CMakeFiles/esp_tests.dir/test_vmmc.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_vmmc.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/esp_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/esp_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mc/CMakeFiles/esp_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/esp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/vmmc/CMakeFiles/esp_vmmc.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/esp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/esp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/esp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/esp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/esp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_bidir.dir/bench_fig5c_bidir.cpp.o"
  "CMakeFiles/bench_fig5c_bidir.dir/bench_fig5c_bidir.cpp.o.d"
  "bench_fig5c_bidir"
  "bench_fig5c_bidir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_bidir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5b_bandwidth.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig5a_latency.
# This may be replaced when dependencies are built.

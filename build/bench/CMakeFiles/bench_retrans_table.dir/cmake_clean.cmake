file(REMOVE_RECURSE
  "CMakeFiles/bench_retrans_table.dir/bench_retrans_table.cpp.o"
  "CMakeFiles/bench_retrans_table.dir/bench_retrans_table.cpp.o.d"
  "bench_retrans_table"
  "bench_retrans_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retrans_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

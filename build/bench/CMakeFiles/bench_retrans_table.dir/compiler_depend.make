# Empty compiler generated dependencies file for bench_retrans_table.
# This may be replaced when dependencies are built.

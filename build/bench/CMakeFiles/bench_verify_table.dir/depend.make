# Empty dependencies file for bench_verify_table.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_verify_table.dir/bench_verify_table.cpp.o"
  "CMakeFiles/bench_verify_table.dir/bench_verify_table.cpp.o.d"
  "bench_verify_table"
  "bench_verify_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verify_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

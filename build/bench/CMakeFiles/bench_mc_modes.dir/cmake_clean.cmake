file(REMOVE_RECURSE
  "CMakeFiles/bench_mc_modes.dir/bench_mc_modes.cpp.o"
  "CMakeFiles/bench_mc_modes.dir/bench_mc_modes.cpp.o.d"
  "bench_mc_modes"
  "bench_mc_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mc_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_mc_modes.
# This may be replaced when dependencies are built.

#!/usr/bin/env python3
"""Pin the observer-disabled runtime overhead against a recorded baseline.

Compares a fresh `bench_runtime --quick --json` run against the committed
baseline (bench/BENCH_runtime.quick.baseline.json, recorded before the obs
subsystem landed). With observability off the new observer hooks must be
dead branches, so wall-clock rows may not regress by more than
--max-regress percent (after --tolerance percent of run-to-run noise).

Deterministic simulated-time rows (fig5a_latency and friends) must match
the baseline exactly: virtual time does not tick while an observer is
absent, so any drift there is a real behaviour change, not noise.

Exit codes: 0 ok, 1 regression found, 2 bad input.
"""

import argparse
import json
import sys

# Units measured in wall-clock time, and the direction that is "better".
WALL_CLOCK_UNITS = {
    "states_per_sec": "higher",
    "host_usec_per_roundtrip": "lower",
    "msgs_per_sec": "higher",
    "mb_per_sec": "higher",
}
# Units in simulated virtual time: deterministic, compared exactly.
VIRTUAL_TIME_UNITS = {"usec", "cycles"}


def rows_by_key(doc):
    out = {}
    for row in doc.get("rows", []):
        out[(row["section"], row["name"], row["config"])] = row
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="recorded baseline JSON")
    ap.add_argument("current", nargs="+",
                    help="fresh BENCH_runtime.json output(s); with several "
                         "runs the best value per row is compared, which "
                         "filters cold-start noise")
    ap.add_argument("--max-regress", type=float, default=2.0,
                    help="max allowed regression, percent (default 2)")
    ap.add_argument("--tolerance", type=float, default=8.0,
                    help="run-to-run noise allowance on wall-clock rows, "
                         "percent (default 8)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = rows_by_key(json.load(f))
        runs = []
        for path in args.current:
            with open(path) as f:
                runs.append(rows_by_key(json.load(f)))
    except (OSError, ValueError, KeyError) as e:
        print(f"check_obs_overhead: bad input: {e}", file=sys.stderr)
        return 2

    # Merge the runs, keeping the best wall-clock value per row (exact-match
    # fields must agree across runs anyway, so any run's copy serves).
    cur = {}
    for run in runs:
        for key, row in run.items():
            prev = cur.get(key)
            if prev is None:
                cur[key] = dict(row)
                continue
            direction = WALL_CLOCK_UNITS.get(row["unit"])
            if direction == "higher" and row["value"] > prev["value"]:
                prev["value"] = row["value"]
            elif direction == "lower" and row["value"] < prev["value"]:
                prev["value"] = row["value"]

    budget = args.max_regress + args.tolerance
    failures = []
    compared = 0
    for key, brow in sorted(base.items()):
        crow = cur.get(key)
        if crow is None:
            failures.append(f"{'/'.join(key)}: row missing from current run")
            continue
        unit = brow["unit"]
        bval, cval = float(brow["value"]), float(crow["value"])
        label = "/".join(key)
        if unit in VIRTUAL_TIME_UNITS:
            compared += 1
            if bval != cval:
                failures.append(
                    f"{label}: simulated time changed {bval} -> {cval} {unit} "
                    f"(must be exact)")
            continue
        direction = WALL_CLOCK_UNITS.get(unit)
        if direction is None or bval == 0:
            continue
        compared += 1
        if direction == "higher":
            regress = (bval - cval) / bval * 100.0
        else:
            regress = (cval - bval) / bval * 100.0
        status = "ok" if regress <= budget else "FAIL"
        print(f"  {status:4s} {label:50s} {bval:12.2f} -> {cval:12.2f} "
              f"{unit} ({regress:+.1f}% regress)")
        if regress > budget:
            failures.append(
                f"{label}: {regress:.1f}% regression exceeds "
                f"{args.max_regress}% budget (+{args.tolerance}% noise)")

    # Determinism cross-check: MC state counts ride along in the rows.
    for key, brow in sorted(base.items()):
        crow = cur.get(key)
        if crow is None:
            continue
        for field in ("states_explored", "states_stored", "transitions"):
            if field in brow and brow.get(field) != crow.get(field):
                failures.append(
                    f"{'/'.join(key)}: {field} changed "
                    f"{brow[field]} -> {crow.get(field)}")

    if compared == 0:
        print("check_obs_overhead: no comparable rows found", file=sys.stderr)
        return 2
    if failures:
        print(f"\ncheck_obs_overhead: {len(failures)} failure(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"check_obs_overhead: {compared} rows within "
          f"{args.max_regress}% (+{args.tolerance}% noise)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

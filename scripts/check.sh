#!/usr/bin/env bash
# Full local CI: strict build, test suite, and static analysis of the
# example corpus plus the VMMC firmware (which must stay finding-free).
#
# Usage: scripts/check.sh [build-dir]
#   ESP_SANITIZE=asan scripts/check.sh build-asan   # also: ubsan, tsan
# tsan is the one that matters for the parallel checker (--jobs N): it
# races N workers over the shared visited set and work queue.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-check}"
SANITIZE="${ESP_SANITIZE:-}"

echo "== configure ($BUILD_DIR, ESP_WERROR=ON${SANITIZE:+, ESP_SANITIZE=$SANITIZE}) =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DESP_WERROR=ON \
  -DESP_SANITIZE="$SANITIZE"

echo "== build =="
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "== test =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$(nproc)"

ESPLINT="$BUILD_DIR/src/tools/esplint"

echo "== esplint: example corpus =="
"$ESPLINT" "$REPO_ROOT"/examples/esp/*.esp

echo "== esplint: VMMC firmware =="
"$ESPLINT" --builtin-vmmc

ESPMC="$BUILD_DIR/src/tools/espmc"

echo "== espmc: --por golden harnesses =="
# Clean per-process harnesses must stay clean under reduction, both
# sequentially and with the parallel engine (exit 0 = verified OK; the
# differential count assertions live in tests/test_mc_por.cpp).
for process in translator pageTable; do
  "$ESPMC" --process "$process" --por \
    "$REPO_ROOT/examples/esp/pagetable.esp" > /dev/null
  "$ESPMC" --process "$process" --por --jobs 4 \
    "$REPO_ROOT/examples/esp/pagetable.esp" > /dev/null
done
"$ESPMC" --process producer --por \
  "$REPO_ROOT/examples/esp/quickstart.esp" > /dev/null

ESPSERVE="$BUILD_DIR/src/tools/espserve"

echo "== espserve: fleet smoke (single-worker deterministic + 4 workers) =="
# Exit 0 only when every request completed and the aggregate totals
# match the load generator's prediction (see docs/serving.md).
"$ESPSERVE" --machines 256 --requests 20000 --serve-jobs 1 \
  --conn-requests 64 -q
"$ESPSERVE" --machines 256 --requests 20000 --serve-jobs 4 \
  --conn-requests 64 -q

echo "check.sh: all green"
